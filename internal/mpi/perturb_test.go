package mpi

import (
	"testing"

	"repro/internal/perturb"
	"repro/internal/trace"
)

// perturbRunBody is a small composite touching every perturbed code path:
// local work (clock skew, noise bursts), point-to-point exchange (message
// jitter), and collectives (per-participant exit jitter).
func perturbRunBody(c *Comm) {
	c.Begin("perturb_body")
	defer c.End()
	buf := c.BaseBuf()
	defer FreeBuf(buf)
	for i := 0; i < 3; i++ {
		c.Work(0.001 * float64(c.Rank()+1))
		PatternSendRecv(c, buf, DirUp, PatternOpts{})
		c.Barrier()
		c.Bcast(buf, 0)
	}
}

func mustPerturbRun(t *testing.T, m *perturb.Model) *trace.Trace {
	t.Helper()
	tr, err := Run(Options{Procs: 4, Perturb: m}, perturbRunBody)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// sameEvent compares events up to the match/instance id: those labels come
// from process-wide atomic counters whose interleaving is scheduling-
// dependent by design, while everything the analyzer consumes — times,
// kinds, locations, paths, peers, sizes — is deterministic.
func sameEvent(a, b trace.Event) bool {
	a.Match, b.Match = 0, 0
	return a == b
}

// A perturbed world is bit-reproducible: the same (seed, level, shape)
// yields an event-identical trace, and the perturbation actually moves
// virtual time relative to an unperturbed run.
func TestPerturbedRunDeterministic(t *testing.T) {
	m1 := perturb.NewModel(perturb.Level(5, 3))
	m2 := perturb.NewModel(perturb.Level(5, 3))
	tr1 := mustPerturbRun(t, m1)
	tr2 := mustPerturbRun(t, m2)
	if len(tr1.Events) != len(tr2.Events) {
		t.Fatalf("event counts differ: %d != %d", len(tr1.Events), len(tr2.Events))
	}
	for i := range tr1.Events {
		if !sameEvent(tr1.Events[i], tr2.Events[i]) {
			t.Fatalf("event %d differs across identical perturbed runs:\n%+v\n%+v",
				i, tr1.Events[i], tr2.Events[i])
		}
	}

	base := mustPerturbRun(t, nil)
	changed := len(base.Events) != len(tr1.Events)
	for i := 0; !changed && i < len(base.Events); i++ {
		changed = base.Events[i].Time != tr1.Events[i].Time
	}
	if !changed {
		t.Fatal("level-3 perturbation left the trace identical to the unperturbed run")
	}

	// A nil model (and a level-0 profile, which NewModel maps to nil) is
	// the unperturbed world, byte for byte.
	if lvl0 := perturb.NewModel(perturb.Level(5, 0)); lvl0 != nil {
		t.Fatalf("level-0 model = %v, want nil", lvl0)
	}
	base2 := mustPerturbRun(t, perturb.NewModel(perturb.Level(5, 0)))
	if len(base.Events) != len(base2.Events) {
		t.Fatalf("level-0 event count differs from unperturbed")
	}
	for i := range base.Events {
		if !sameEvent(base.Events[i], base2.Events[i]) {
			t.Fatalf("level-0 event %d differs from unperturbed", i)
		}
	}
}

// Different perturbation seeds at the same level must disturb the run
// differently — the robustness sweep samples the disturbance space, it
// does not replay one fixed pattern.
func TestPerturbedRunSeedSensitivity(t *testing.T) {
	tr1 := mustPerturbRun(t, perturb.NewModel(perturb.Level(5, 3)))
	tr2 := mustPerturbRun(t, perturb.NewModel(perturb.Level(6, 3)))
	if len(tr1.Events) == len(tr2.Events) {
		same := true
		for i := range tr1.Events {
			if tr1.Events[i].Time != tr2.Events[i].Time {
				same = false
				break
			}
		}
		if same {
			t.Fatal("seeds 5 and 6 produced identical perturbed traces")
		}
	}
}
