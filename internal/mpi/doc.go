// Package mpi implements the message-passing substrate of the ATS
// reproduction: an in-process, MPI-like runtime in which each rank is a
// goroutine with its own logical (or wall) clock.
//
// The package provides what the ATS framework layers need (paper §3.1.3,
// §3.1.4): datatypes, buffer management including irregular (v-variant)
// buffers driven by distribution functions, blocking and non-blocking
// point-to-point communication with eager and rendezvous protocols, the
// full set of collective operations used by the property functions, the
// even/odd send-receive and cyclic-shift communication patterns, and
// communicator management (dup/split) for composite test programs that run
// different property sets in different communicators (paper §3.3).
//
// Two properties matter for fidelity:
//
//  1. Blocking semantics match MPI: a receive blocks until a matching send
//     was posted; a synchronous/rendezvous send blocks until the receive is
//     posted; collectives block according to their data dependencies (a
//     broadcast receiver waits for the root; a reduce root waits for all).
//     These are exactly the mechanics that create the APART wait-state
//     properties (late sender, late receiver, late broadcast, early
//     reduce, wait-at-barrier, N×N imbalance).
//
//  2. In Virtual clock mode all timestamps are computed algebraically from
//     the participants' clocks and the cost model, so the waiting times in
//     the trace equal the configured pathology severities exactly and runs
//     are deterministic.
//
// A run materializes its trace by default; setting Options.Sink streams
// per-rank buffers to an on-disk spool instead (see trace.Sink and
// doc/ARCHITECTURE.md) for bounded-memory analysis at large rank counts.
package mpi
