package mpi

import (
	"fmt"

	"repro/internal/distr"
	"repro/internal/trace"
	"repro/internal/xctx"
)

// Wildcards for point-to-point receives.
const (
	// AnySource matches a message from any source rank (MPI_ANY_SOURCE).
	AnySource = -1
	// AnyTag matches any message tag (MPI_ANY_TAG).
	AnyTag = -1
)

// Undefined is the color value that excludes a rank from a Split
// (MPI_UNDEFINED).
const Undefined = -1

// commCore is the rank-shared part of a communicator: its context id, its
// member world ranks, and its collective engine.  Comm handles of all
// members point at the same core.
type commCore struct {
	w      *World
	cid    int32
	ranks  []int // member world ranks, indexed by comm-local rank
	engine *collEngine
}

// Comm is one rank's handle on a communicator.  It is the value passed to
// rank bodies and to every property function; it also carries the rank's
// execution context (clock, tracer, RNG), playing the role that the
// implicit process state plays in C MPI.  A Comm is owned by its rank's
// goroutine and must not be shared between goroutines.
type Comm struct {
	core    *commCore
	p       *proc
	myRank  int    // comm-local rank
	collSeq uint64 // per-communicator collective sequence number
}

// Rank returns the calling process's rank within this communicator.
func (c *Comm) Rank() int { return c.myRank }

// Size returns the number of processes in this communicator.
func (c *Comm) Size() int { return len(c.core.ranks) }

// WorldRank returns the calling process's rank in the world communicator.
func (c *Comm) WorldRank() int { return c.p.rank }

// WorldSize returns the total number of processes.
func (c *Comm) WorldSize() int { return len(c.p.w.procs) }

// ContextID returns the communicator's context id (0 for the world).
func (c *Comm) ContextID() int32 { return c.core.cid }

// Ctx exposes the rank's execution context for hybrid programs (OpenMP
// teams fork from it) and for the work layer.
func (c *Comm) Ctx() *xctx.Ctx { return c.p.ctx }

// WTime returns the rank's current time in seconds since the run epoch
// (MPI_Wtime).
func (c *Comm) WTime() float64 { return c.p.ctx.Now() }

// Begin opens a user trace region, used by property functions so that the
// analyzer's call-graph pane can localize findings (paper Fig 3.5).
func (c *Comm) Begin(name string) { c.p.ctx.Enter(name) }

// End closes the current user trace region.
func (c *Comm) End() { c.p.ctx.Exit() }

// Work executes secs seconds of sequential work on this rank (do_work).
func (c *Comm) Work(secs float64) { c.p.ctx.Work(secs) }

// DoWork is par_do_mpi_work: every member of the communicator calls it, and
// each executes df(rank, size, sf, dd) seconds of work.
func (c *Comm) DoWork(df distr.Func, dd distr.Desc, sf float64) {
	c.p.ctx.Work(df(c.myRank, c.Size(), sf, dd))
}

// SetBase sets the rank's default message buffer shape (set_base_comm).
func (c *Comm) SetBase(t Datatype, cnt int) {
	if cnt <= 0 {
		panic(fmt.Sprintf("mpi: SetBase with non-positive count %d", cnt))
	}
	c.p.baseType, c.p.baseCount = t, cnt
}

// Base returns the default buffer shape.
func (c *Comm) Base() (Datatype, int) { return c.p.baseType, c.p.baseCount }

// BaseBuf allocates a buffer of the default shape.
func (c *Comm) BaseBuf() *Buf { return AllocBuf(c.p.baseType, c.p.baseCount) }

// worldRankOf maps a comm-local rank to its world rank.
func (c *Comm) worldRankOf(local int) int {
	if local < 0 || local >= len(c.core.ranks) {
		panic(fmt.Sprintf("mpi: rank %d outside communicator of size %d", local, len(c.core.ranks)))
	}
	return c.core.ranks[local]
}

// init models MPI_Init: it charges the startup cost inside an MPI_Init
// region so the "High MPI Init/Finalize Overhead" property of small test
// programs (paper §3.2) is visible in traces.
func (c *Comm) init() {
	ctx := c.p.ctx
	ctx.Enter("MPI_Init")
	cost := c.p.w.opt.Cost
	ctx.Clock.Advance(cost.InitTime)
	ctx.Exit()
}

// finalize models MPI_Finalize: a synchronizing teardown.
func (c *Comm) finalize() {
	ctx := c.p.ctx
	ctx.Enter("MPI_Finalize")
	c.syncCollective(trace.CollBarrier, false)
	ctx.Clock.Advance(c.p.w.opt.Cost.FinalizeTime)
	ctx.Exit()
}

// commFromCore builds this rank's handle on a freshly created communicator.
func (c *Comm) commFromCore(core *commCore) *Comm {
	if core == nil {
		return nil
	}
	for i, wr := range core.ranks {
		if wr == c.p.rank {
			return &Comm{core: core, p: c.p, myRank: i}
		}
	}
	panic("mpi: rank missing from its own split group")
}

// Dup returns a new communicator with the same group (MPI_Comm_dup).  Like
// the real operation it is collective over the communicator.
func (c *Comm) Dup() *Comm {
	res := c.runColl(collArgs{kind: collSplit, color: 0, key: c.myRank})
	return c.commFromCore(res.newCore)
}

// Split partitions the communicator by color; ranks within each new
// communicator are ordered by (key, old rank) (MPI_Comm_split).  Ranks
// passing Undefined receive nil.
func (c *Comm) Split(color, key int) *Comm {
	if color < 0 && color != Undefined {
		panic(fmt.Sprintf("mpi: Split with negative color %d (use Undefined to opt out)", color))
	}
	res := c.runColl(collArgs{kind: collSplit, color: color, key: key})
	return c.commFromCore(res.newCore)
}
