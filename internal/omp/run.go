package omp

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/perturb"
	"repro/internal/trace"
	"repro/internal/vtime"
	"repro/internal/work"
	"repro/internal/xctx"
)

// RunOptions configures a standalone (non-MPI) OpenMP program run.
type RunOptions struct {
	// Threads is the team size for the top-level region started by the
	// body via Parallel (it is also recorded as the default Options).
	Threads int
	// Mode selects virtual (default) or real time.
	Mode vtime.Mode
	// Cost overrides construct overheads (zero selects DefaultCost).
	Cost CostModel
	// Untraced disables tracing.
	Untraced bool
	// Seed seeds the random generators (default 1).
	Seed uint64
	// Perturb injects deterministic timing disturbances into
	// Virtual-mode runs (the master context and every forked thread
	// inherit per-executor perturbers); nil leaves the run exactly
	// unperturbed.  See package perturb.
	Perturb *perturb.Model
	// Sink, when non-nil, streams trace events out of the run as it
	// executes (see mpi.Options.Sink): buffers spill chunk frames while
	// recording and Run returns a nil trace.  Ignored when Untraced.
	Sink trace.Sink
}

// Run executes body as a standalone OpenMP-style program on a fresh
// master context (rank 0, thread 0) and returns the merged trace.  The
// body typically calls Parallel one or more times with the options it
// receives.  Panics in the body are returned as errors.
func Run(opt RunOptions, body func(ctx *xctx.Ctx, opt Options)) (*trace.Trace, error) {
	if opt.Threads <= 0 {
		opt.Threads = 4
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.Mode == vtime.Real {
		vtime.Calibrate()
		work.CalibrateReal()
	}
	streaming := opt.Sink != nil && !opt.Untraced
	loc := trace.Location{Rank: 0, Thread: 0}
	var tb *trace.Buffer
	if !opt.Untraced {
		tb = trace.NewBuffer(loc)
		if streaming {
			opt.Sink.Attach(tb)
		}
	}
	clock := vtime.NewClock(opt.Mode, time.Now())
	if opt.Perturb != nil && opt.Mode == vtime.Virtual {
		clock.SetPerturber(opt.Perturb.Executor(0, 1))
	}
	ctx := xctx.New(clock, tb, work.NewRNG(opt.Seed), loc)

	var mu sync.Mutex
	var adopted []*trace.Buffer
	var sinkErr error
	if streaming {
		// Thread buffers stream: attached at fork, flushed and recycled
		// at the join (see mpi.Options.Sink).
		ctx.Spill = opt.Sink.Attach
		ctx.Adopt = func(b *trace.Buffer) {
			if b == nil {
				return
			}
			mu.Lock()
			if err := opt.Sink.Finish(b); err != nil && sinkErr == nil {
				sinkErr = err
			}
			mu.Unlock()
			b.Release()
		}
	} else if !opt.Untraced {
		ctx.Adopt = func(b *trace.Buffer) {
			mu.Lock()
			adopted = append(adopted, b)
			mu.Unlock()
		}
	}

	var runErr error
	func() {
		defer func() {
			if r := recover(); r != nil {
				runErr = fmt.Errorf("omp: run panicked: %v", r)
			}
		}()
		body(ctx, Options{Threads: opt.Threads, Cost: opt.Cost})
	}()

	if opt.Untraced {
		return nil, runErr
	}
	if streaming {
		// Flush the master buffer's tail (all team threads joined before
		// the body returned, so every other buffer is already finished).
		if err := opt.Sink.Finish(tb); err != nil && runErr == nil && sinkErr == nil {
			sinkErr = err
		}
		tb.Release()
		if runErr == nil {
			runErr = sinkErr
		}
		return nil, runErr
	}
	mu.Lock()
	defer mu.Unlock()
	sort.Slice(adopted, func(i, j int) bool {
		if adopted[i].Loc.Rank != adopted[j].Loc.Rank {
			return adopted[i].Loc.Rank < adopted[j].Loc.Rank
		}
		return adopted[i].Loc.Thread < adopted[j].Loc.Thread
	})
	buffers := append([]*trace.Buffer{tb}, adopted...)
	tr := trace.Merge(buffers...)
	// The merge copies everything it needs; recycle the buffers for the
	// next run (all team threads joined before the body returned).
	for _, b := range buffers {
		b.Release()
	}
	return tr, runErr
}
