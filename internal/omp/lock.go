package omp

import (
	"sync"

	"repro/internal/trace"
	"repro/internal/vtime"
)

// Lock is an OpenMP-style lock (omp_lock_t).  In Real mode it is a plain
// mutex and the waiting time is measured on the wall clock; in Virtual
// mode entry is serialized on virtual time: an acquirer starts at max(its
// own clock, the previous holder's release time), and the difference is
// recorded as lock waiting time — the raw material for the "serialization
// at critical section" property.
//
// Virtual-mode entry order follows real arrival order at the lock, so
// individual waits may vary between runs when contenders arrive with equal
// virtual clocks; the aggregate serialization time is determined by the
// section durations alone (see package tests).
type Lock struct {
	mu       sync.Mutex
	name     string
	vRelease float64 // virtual time the lock was last released
}

// NewLock creates a named lock.  The name labels trace events.
func NewLock(name string) *Lock {
	return &Lock{name: name}
}

// Set acquires the lock on behalf of tc (omp_set_lock).  The lock is held
// until Unset; the waiting time incurred is recorded as a KindLock trace
// event.
func (lk *Lock) Set(tc *TC) {
	ctx := tc.ctx
	enter := ctx.Now()
	lk.mu.Lock()
	var wait float64
	if ctx.Mode() == vtime.Virtual {
		start := enter
		if lk.vRelease > start {
			start = lk.vRelease
		}
		wait = start - enter
		ctx.Clock.AdvanceTo(start)
		ctx.Clock.Advance(tc.team.cost.Critical)
	} else {
		wait = ctx.Now() - enter
	}
	ctx.Record(trace.Event{
		Time: ctx.Now(), Aux: wait, Kind: trace.KindLock,
		CRank: int32(tc.id), Comm: tc.team.id,
	})
}

// Unset releases the lock (omp_unset_lock).
func (lk *Lock) Unset(tc *TC) {
	if tc.ctx.Mode() == vtime.Virtual {
		lk.vRelease = tc.ctx.Now()
	}
	lk.mu.Unlock()
}

// Critical executes f inside the named critical section
// ("#pragma omp critical(name)").  Critical sections with the same name on
// the same team exclude each other.
func (tc *TC) Critical(name string, f func()) {
	tm := tc.team
	tm.mu.Lock()
	lk := tm.locks[name]
	if lk == nil {
		lk = NewLock(name)
		tm.locks[name] = lk
	}
	tm.mu.Unlock()
	tc.CriticalLock(lk, f)
}

// CriticalLock executes f while holding lk, wrapped in an "omp critical"
// trace region.
func (tc *TC) CriticalLock(lk *Lock, f func()) {
	tc.ctx.Enter("omp critical")
	lk.Set(tc)
	f()
	lk.Unset(tc)
	tc.ctx.Exit()
}
