// Package omp implements the thread-team (OpenMP-like) substrate of the
// ATS reproduction: fork-join parallel regions, barriers, worksharing
// loops with static/dynamic/guided schedules, single/master/sections
// constructs, and critical sections / locks.
//
// The package exists because the ATS property functions for OpenMP
// (imbalance_in_omp_pregion, imbalance_at_omp_barrier,
// imbalance_in_omp_loop, …) are statements about fork-join semantics:
// which thread waits at which team-wide synchronization point.  Those
// semantics are reproduced exactly; the pragma syntax is replaced by
// explicit calls on a team-context value (Go has no compiler pragmas).
//
// As in the mpi package, timestamps come from the executor clocks: in
// Virtual mode a barrier releases all threads at the maximum arrival time
// plus the barrier cost, a dynamic loop is scheduled greedily by thread
// clock (deterministic list scheduling), and the join folds the maximum
// thread clock back into the encountering context.
package omp

import (
	"fmt"
	"runtime/debug"
	"sync"

	"repro/internal/distr"
	"repro/internal/trace"
	"repro/internal/vtime"
	"repro/internal/xctx"
)

// CostModel parameterizes the virtual-time overheads of the OpenMP-like
// constructs, in seconds.  The defaults are EPCC-microbenchmark-shaped:
// small but nonzero, so construct overheads are visible in traces without
// dominating them.
type CostModel struct {
	Fork     float64 // charged to each thread at region start
	Join     float64 // charged at region end
	Barrier  float64 // charged at each barrier release
	Dispatch float64 // charged per dynamic/guided chunk handout
	Critical float64 // charged per critical-section entry
}

// DefaultCost returns the standard construct overheads.
func DefaultCost() CostModel {
	return CostModel{
		Fork:     10e-6,
		Join:     10e-6,
		Barrier:  5e-6,
		Dispatch: 0.5e-6,
		Critical: 0.5e-6,
	}
}

// teamOpID derives the trace Match id of a team operation from the team id
// and the construct sequence number, so ids depend only on execution
// position — identical programs emit identical ids regardless of goroutine
// interleaving or execution engine (a global counter would not survive the
// engine differential harness's byte comparison).  Bit 31 of seq
// distinguishes the implicit join barrier from worksharing constructs.
func teamOpID(teamID int32, seq uint64) uint64 {
	return uint64(uint32(teamID))<<32 | (seq+1)&0xffffffff
}

// team is the shared state of one parallel region.
type team struct {
	id   int32
	size int
	cost CostModel
	mode vtime.Mode

	mu   sync.Mutex
	cond *sync.Cond
	ops  map[uint64]*teamOp

	failErr error // first panic of any thread

	locks map[string]*Lock // named critical sections
}

// fail records a thread panic and wakes all waiters.
func (tm *team) fail(err error) {
	tm.mu.Lock()
	if tm.failErr == nil {
		tm.failErr = err
	}
	tm.cond.Broadcast()
	tm.mu.Unlock()
}

// checkFailedLocked panics (unwinding the thread) if the team has failed.
// Callers must hold tm.mu exactly once; the panic path releases it so that
// sibling threads can observe the failure too.
func (tm *team) checkFailedLocked() {
	if tm.failErr != nil {
		err := tm.failErr
		tm.mu.Unlock()
		panic(teamAbort{err})
	}
}

// teamAbort unwinds sibling threads after a panic.
type teamAbort struct{ cause error }

func (e teamAbort) Error() string {
	return "omp: team aborted because another thread failed: " + e.cause.Error()
}

// TC is a thread context: the handle each team member receives, combining
// the thread's executor context with the team coordination state.  A TC is
// owned by its thread goroutine.
type TC struct {
	ctx  *xctx.Ctx
	team *team
	id   int // omp_get_thread_num()
	seq  uint64
}

// ThreadNum returns the thread's id within its team (omp_get_thread_num).
func (tc *TC) ThreadNum() int { return tc.id }

// NumThreads returns the team size (omp_get_num_threads).
func (tc *TC) NumThreads() int { return tc.team.size }

// Ctx exposes the thread's executor context.
func (tc *TC) Ctx() *xctx.Ctx { return tc.ctx }

// Now returns the thread's current time.
func (tc *TC) Now() float64 { return tc.ctx.Now() }

// Work executes secs seconds of sequential work on this thread (do_work).
func (tc *TC) Work(secs float64) { tc.ctx.Work(secs) }

// DoWork is par_do_omp_work: every team member calls it and executes
// df(threadNum, teamSize, sf, dd) seconds of work.
func (tc *TC) DoWork(df distr.Func, dd distr.Desc, sf float64) {
	tc.ctx.Work(df(tc.id, tc.team.size, sf, dd))
}

// Begin opens a user trace region on this thread.
func (tc *TC) Begin(name string) { tc.ctx.Enter(name) }

// End closes the current user trace region.
func (tc *TC) End() { tc.ctx.Exit() }

// Options configures a parallel region.
type Options struct {
	// Threads is the team size (default 4).
	Threads int
	// Cost overrides the construct cost model; zero value selects
	// DefaultCost.
	Cost CostModel
}

func (o Options) withDefaults() Options {
	if o.Threads <= 0 {
		o.Threads = 4
	}
	if (o.Cost == CostModel{}) {
		o.Cost = DefaultCost()
	}
	return o
}

// Parallel executes body on a team of opt.Threads threads forked from ctx
// ("#pragma omp parallel").  Thread 0 (the master) runs on the
// encountering context; the others run on freshly forked contexts whose
// trace buffers are adopted into the run.  Parallel returns after the
// join, with ctx's clock advanced to the team's completion time.  A panic
// on any thread aborts the team and re-panics on the caller.
func Parallel(ctx *xctx.Ctx, opt Options, body func(tc *TC)) {
	opt = opt.withDefaults()
	n := opt.Threads
	tm := &team{
		id:    ctx.NextTeamID(),
		size:  n,
		cost:  opt.Cost,
		mode:  ctx.Mode(),
		ops:   make(map[uint64]*teamOp),
		locks: make(map[string]*Lock),
	}
	tm.cond = sync.NewCond(&tm.mu)

	ctx.Enter("omp parallel")
	forkT := ctx.Now()
	ctx.Record(trace.Event{
		Time: forkT, Kind: trace.KindFork, Comm: tm.id,
		Bytes: int64(n),
	})

	tcs := make([]*TC, n)
	tcs[0] = &TC{ctx: ctx, team: tm, id: 0}
	for i := 1; i < n; i++ {
		child := ctx.Fork()
		child.Clock.Advance(opt.Cost.Fork)
		child.Enter("omp parallel")
		tcs[i] = &TC{ctx: child, team: tm, id: i}
	}
	ctx.Clock.Advance(opt.Cost.Fork)

	var wg sync.WaitGroup
	finish := make([]float64, n)
	runThread := func(tc *TC) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(teamAbort); !ok {
					tm.fail(fmt.Errorf("omp: thread %d panicked: %v\n%s",
						tc.id, r, debug.Stack()))
				}
			}
			finish[tc.id] = tc.ctx.Now()
			wg.Done()
		}()
		body(tc)
	}
	wg.Add(n)
	for i := 1; i < n; i++ {
		go runThread(tcs[i])
	}
	runThread(tcs[0])
	wg.Wait()

	tm.mu.Lock()
	err := tm.failErr
	tm.mu.Unlock()
	if err != nil {
		// Close children's regions so buffers stay well-formed, then
		// propagate.
		for i := 1; i < n; i++ {
			for tcs[i].ctx.TB.Depth() > 0 {
				tcs[i].ctx.Exit()
			}
			if ctx.Adopt != nil {
				ctx.Adopt(tcs[i].ctx.TB)
			}
		}
		panic(err)
	}

	// Join: every thread synchronizes at the maximum finish time.
	joinT := finish[0]
	for _, f := range finish[1:] {
		if f > joinT {
			joinT = f
		}
	}
	joinT += opt.Cost.Join
	opID := teamOpID(tm.id, tcs[0].seq|1<<31)
	for i := n - 1; i >= 0; i-- {
		tc := tcs[i]
		if tc.ctx.Mode() == vtime.Virtual {
			tc.ctx.Clock.AdvanceTo(joinT)
		}
		tc.ctx.Record(trace.Event{
			Time: tc.ctx.Now(), Aux: finish[i], Kind: trace.KindColl,
			Coll: trace.CollOMPJoin, CRank: int32(i), Root: -1,
			Comm: tm.id, Match: opID,
		})
		if i > 0 {
			tc.ctx.Exit() // close the child's "omp parallel" region
			if ctx.Adopt != nil {
				ctx.Adopt(tc.ctx.TB)
			}
		}
	}
	ctx.Record(trace.Event{
		Time: ctx.Now(), Aux: forkT, Kind: trace.KindJoin, Comm: tm.id,
	})
	ctx.Exit()
}

// ParallelFor is the combined "#pragma omp parallel for": it forks a team
// that executes just the loop.
func ParallelFor(ctx *xctx.Ctx, opt Options, n int, fo ForOpt, body func(tc *TC, i int)) {
	Parallel(ctx, opt, func(tc *TC) {
		tc.For(n, fo, func(i int) { body(tc, i) })
	})
}
