package omp

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/distr"
	"repro/internal/trace"
	"repro/internal/xctx"
)

func mustRun(t *testing.T, threads int, body func(tc *TC)) *trace.Trace {
	t.Helper()
	tr, err := Run(RunOptions{Threads: threads}, func(ctx *xctx.Ctx, opt Options) {
		Parallel(ctx, opt, body)
	})
	if err != nil {
		t.Fatalf("Run failed: %v", err)
	}
	return tr
}

func TestThreadNumbering(t *testing.T) {
	const T = 6
	var seen [T]atomic.Bool
	mustRun(t, T, func(tc *TC) {
		if tc.NumThreads() != T {
			t.Errorf("NumThreads = %d, want %d", tc.NumThreads(), T)
		}
		if seen[tc.ThreadNum()].Swap(true) {
			t.Errorf("thread %d ran twice", tc.ThreadNum())
		}
	})
	for i := range seen {
		if !seen[i].Load() {
			t.Errorf("thread %d never ran", i)
		}
	}
}

func TestJoinSynchronizesClocks(t *testing.T) {
	// Thread i works i*0.1s; after the join the master clock must be at
	// least the maximum thread time.
	const T = 4
	var joined float64
	_, err := Run(RunOptions{Threads: T}, func(ctx *xctx.Ctx, opt Options) {
		Parallel(ctx, opt, func(tc *TC) {
			tc.Work(float64(tc.ThreadNum()) * 0.1)
		})
		joined = ctx.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	if joined < 0.3 {
		t.Errorf("master clock after join = %v, want >= 0.3", joined)
	}
}

func TestJoinEventsRecordImbalance(t *testing.T) {
	const T = 4
	tr := mustRun(t, T, func(tc *TC) {
		tc.Work(float64(tc.ThreadNum()) * 0.1)
	})
	joins := 0
	var joinT float64
	waits := map[int32]float64{}
	for _, ev := range tr.Events {
		if ev.Kind == trace.KindColl && ev.Coll == trace.CollOMPJoin {
			joins++
			joinT = ev.Time
			waits[ev.CRank] = ev.Time - ev.Aux
		}
	}
	if joins != T {
		t.Fatalf("got %d join events, want %d", joins, T)
	}
	// Thread 3 worked longest: its wait ≈ 0; thread 0 waited ≈ 0.3.
	if waits[0] < 0.29 {
		t.Errorf("thread 0 wait = %v, want ≈ 0.3", waits[0])
	}
	if waits[3] > 0.01 {
		t.Errorf("thread 3 wait = %v, want ≈ 0", waits[3])
	}
	_ = joinT
}

func TestBarrierReleasesAtMax(t *testing.T) {
	const T = 3
	tr := mustRun(t, T, func(tc *TC) {
		tc.Work(float64(tc.ThreadNum()) * 0.05)
		tc.Barrier()
	})
	var exits []float64
	var maxEnter float64
	for _, ev := range tr.Events {
		if ev.Kind == trace.KindColl && ev.Coll == trace.CollOMPBarrier {
			exits = append(exits, ev.Time)
			if ev.Aux > maxEnter {
				maxEnter = ev.Aux
			}
		}
	}
	if len(exits) != T {
		t.Fatalf("got %d barrier events, want %d", len(exits), T)
	}
	for _, x := range exits {
		if x < maxEnter {
			t.Errorf("barrier exit %v before last arrival %v", x, maxEnter)
		}
		if math.Abs(x-exits[0]) > 1e-12 {
			t.Errorf("barrier exits differ: %v vs %v", x, exits[0])
		}
	}
}

func TestStaticLoopCoversAllIterations(t *testing.T) {
	for _, chunk := range []int{0, 1, 3, 7} {
		const N = 100
		var hits [N]atomic.Int32
		mustRun(t, 4, func(tc *TC) {
			tc.For(N, ForOpt{Sched: Static, Chunk: chunk}, func(i int) {
				hits[i].Add(1)
			})
		})
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Errorf("chunk %d: iteration %d executed %d times", chunk, i, hits[i].Load())
			}
		}
	}
}

func TestDynamicLoopCoversAllIterations(t *testing.T) {
	for _, sched := range []Schedule{Dynamic, Guided} {
		const N = 57
		var hits [N]atomic.Int32
		mustRun(t, 4, func(tc *TC) {
			tc.For(N, ForOpt{Sched: sched, Chunk: 2}, func(i int) {
				hits[i].Add(1)
			})
		})
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Errorf("%v: iteration %d executed %d times", sched, i, hits[i].Load())
			}
		}
	}
}

func TestStaticDefaultIsBlockPartition(t *testing.T) {
	const T, N = 4, 16
	owner := make([]atomic.Int32, N)
	mustRun(t, T, func(tc *TC) {
		tc.For(N, ForOpt{}, func(i int) {
			owner[i].Store(int32(tc.ThreadNum() + 1))
		})
	})
	for i := 0; i < N; i++ {
		want := int32(i/(N/T)) + 1
		if owner[i].Load() != want {
			t.Errorf("iteration %d ran on thread %d, want %d", i, owner[i].Load()-1, want-1)
		}
	}
}

func TestDynamicLoopBalancesVirtualTime(t *testing.T) {
	// 8 items of 0.1s each over 4 threads, dynamic: the virtual makespan
	// must be ≈ 0.2s (2 rounds), not 0.8s (serial).
	const T = 4
	var joined float64
	_, err := Run(RunOptions{Threads: T}, func(ctx *xctx.Ctx, opt Options) {
		start := ctx.Now()
		Parallel(ctx, opt, func(tc *TC) {
			tc.For(8, ForOpt{Sched: Dynamic, Chunk: 1}, func(i int) {
				tc.Work(0.1)
			})
		})
		joined = ctx.Now() - start
	})
	if err != nil {
		t.Fatal(err)
	}
	if joined < 0.2 || joined > 0.21 {
		t.Errorf("dynamic loop makespan = %v, want ≈ 0.2", joined)
	}
}

func TestDynamicBeatsStaticOnImbalancedItems(t *testing.T) {
	// Item durations: one 0.4s item and fifteen 0.04s items.  A static
	// block schedule puts the big item plus 3 small on one thread
	// (≈0.52s); dynamic reaches ≈ max(0.4, …) + small change.
	items := make([]float64, 16)
	for i := range items {
		items[i] = 0.04
	}
	items[0] = 0.4
	makespan := func(sched Schedule) float64 {
		var span float64
		_, err := Run(RunOptions{Threads: 4}, func(ctx *xctx.Ctx, opt Options) {
			start := ctx.Now()
			Parallel(ctx, opt, func(tc *TC) {
				tc.For(len(items), ForOpt{Sched: sched, Chunk: 1}, func(i int) {
					tc.Work(items[i])
				})
			})
			span = ctx.Now() - start
		})
		if err != nil {
			t.Fatal(err)
		}
		return span
	}
	st, dy := makespan(Static), makespan(Dynamic)
	if dy >= st {
		t.Errorf("dynamic (%v) not faster than static (%v) on imbalanced items", dy, st)
	}
	if dy > 0.45 {
		t.Errorf("dynamic makespan %v, want ≈ 0.4", dy)
	}
}

func TestGuidedChunksShrink(t *testing.T) {
	// Record chunk sizes via iteration adjacency per grant: approximate
	// by counting grants (Dispatch overhead count is invisible; instead
	// check coverage and that guided completes).
	const N = 64
	var count atomic.Int32
	mustRun(t, 4, func(tc *TC) {
		tc.For(N, ForOpt{Sched: Guided}, func(i int) {
			count.Add(1)
		})
	})
	if count.Load() != N {
		t.Errorf("guided executed %d iterations, want %d", count.Load(), N)
	}
}

func TestSingleExecutesOnce(t *testing.T) {
	var n atomic.Int32
	tr := mustRun(t, 4, func(tc *TC) {
		tc.Single(func() {
			n.Add(1)
			tc.Work(0.05)
		})
	})
	if n.Load() != 1 {
		t.Errorf("single body ran %d times", n.Load())
	}
	// All threads must leave the single at (or after) the executor's
	// finish time.
	var exits []float64
	for _, ev := range tr.Events {
		if ev.Kind == trace.KindColl && ev.Coll == trace.CollOMPSingle {
			exits = append(exits, ev.Time)
		}
	}
	if len(exits) != 4 {
		t.Fatalf("got %d single events, want 4", len(exits))
	}
	for _, x := range exits {
		if x < 0.05 {
			t.Errorf("single exit %v before executor finish", x)
		}
	}
}

func TestMasterOnlyThreadZero(t *testing.T) {
	var ran atomic.Int32
	mustRun(t, 4, func(tc *TC) {
		tc.Master(func() {
			ran.Add(1)
			if tc.ThreadNum() != 0 {
				t.Errorf("master body on thread %d", tc.ThreadNum())
			}
		})
	})
	if ran.Load() != 1 {
		t.Errorf("master ran %d times", ran.Load())
	}
}

func TestSectionsDistribute(t *testing.T) {
	var a, b, c atomic.Int32
	mustRun(t, 2, func(tc *TC) {
		tc.Sections(
			func() { a.Add(1) },
			func() { b.Add(1) },
			func() { c.Add(1) },
		)
	})
	if a.Load() != 1 || b.Load() != 1 || c.Load() != 1 {
		t.Errorf("sections ran %d/%d/%d times", a.Load(), b.Load(), c.Load())
	}
}

func TestCriticalMutualExclusion(t *testing.T) {
	var inside atomic.Int32
	var violations atomic.Int32
	mustRun(t, 8, func(tc *TC) {
		for i := 0; i < 20; i++ {
			tc.Critical("c", func() {
				if inside.Add(1) != 1 {
					violations.Add(1)
				}
				inside.Add(-1)
			})
		}
	})
	if violations.Load() != 0 {
		t.Errorf("%d mutual-exclusion violations", violations.Load())
	}
}

func TestCriticalSerializationTotalWait(t *testing.T) {
	// T threads arrive simultaneously, each holding the section for s
	// seconds: total wait = s * (0+1+...+(T-1)) regardless of order.
	const T = 4
	const s = 0.1
	tr := mustRun(t, T, func(tc *TC) {
		tc.Critical("hot", func() {
			tc.Work(s)
		})
	})
	var total float64
	n := 0
	for _, ev := range tr.Events {
		if ev.Kind == trace.KindLock {
			total += ev.Aux
			n++
		}
	}
	if n != T {
		t.Fatalf("got %d lock events, want %d", n, T)
	}
	want := s * float64(0+1+2+3)
	if math.Abs(total-want) > 0.01 {
		t.Errorf("total serialization wait = %v, want ≈ %v", total, want)
	}
}

func TestNestedParallel(t *testing.T) {
	var count atomic.Int32
	tr := mustRun(t, 2, func(tc *TC) {
		tc.Parallel(Options{Threads: 3}, func(inner *TC) {
			count.Add(1)
		})
	})
	if count.Load() != 6 {
		t.Errorf("nested bodies ran %d times, want 6", count.Load())
	}
	// All locations must be distinct: 1 master + 1 outer fork + 2×2
	// inner forks = 6 trace locations.
	if len(tr.Locations) != 6 {
		t.Errorf("got %d locations, want 6: %v", len(tr.Locations), tr.Locations)
	}
}

func TestParDoOMPWorkDistribution(t *testing.T) {
	// Block2 distribution: first half 0.1s, second half 0.3s.
	const T = 4
	tr := mustRun(t, T, func(tc *TC) {
		tc.DoWork(distr.Block2, distr.Val2{Low: 0.1, High: 0.3}, 1.0)
		tc.Barrier()
	})
	// Threads 0,1 wait ≈0.2 at the barrier; threads 2,3 wait ≈0.
	waits := map[int32]float64{}
	for _, ev := range tr.Events {
		if ev.Kind == trace.KindColl && ev.Coll == trace.CollOMPBarrier {
			waits[ev.CRank] = ev.Time - ev.Aux
		}
	}
	if waits[0] < 0.19 || waits[1] < 0.19 {
		t.Errorf("low-work threads waited %v/%v, want ≈ 0.2", waits[0], waits[1])
	}
	if waits[2] > 0.01 || waits[3] > 0.01 {
		t.Errorf("high-work threads waited %v/%v, want ≈ 0", waits[2], waits[3])
	}
}

func TestPanicPropagatesFromThread(t *testing.T) {
	_, err := Run(RunOptions{Threads: 3}, func(ctx *xctx.Ctx, opt Options) {
		Parallel(ctx, opt, func(tc *TC) {
			if tc.ThreadNum() == 2 {
				panic("thread boom")
			}
			tc.Barrier() // others block; must unwind
		})
	})
	if err == nil {
		t.Fatal("expected error from panicking thread")
	}
}

func TestConstructMismatchDetected(t *testing.T) {
	_, err := Run(RunOptions{Threads: 2}, func(ctx *xctx.Ctx, opt Options) {
		Parallel(ctx, opt, func(tc *TC) {
			if tc.ThreadNum() == 0 {
				tc.Barrier()
			} else {
				tc.For(4, ForOpt{Sched: Dynamic}, func(i int) {})
			}
		})
	})
	if err == nil {
		t.Fatal("expected construct mismatch error")
	}
}

func TestDeterminismOfDynamicSchedule(t *testing.T) {
	run := func() []float64 {
		tr := mustRun(t, 4, func(tc *TC) {
			tc.For(12, ForOpt{Sched: Dynamic, Chunk: 1}, func(i int) {
				tc.Work(0.01 * float64(i%3+1))
			})
			tc.Barrier()
		})
		var ts []float64
		for _, ev := range tr.Events {
			ts = append(ts, ev.Time)
		}
		return ts
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d time differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestForNoWaitSkipsBarrier(t *testing.T) {
	tr := mustRun(t, 3, func(tc *TC) {
		tc.DoWork(distr.Linear, distr.Val2{Low: 0.01, High: 0.1}, 1.0)
		tc.For(3, ForOpt{Sched: Static, NoWait: true}, func(i int) {})
	})
	for _, ev := range tr.Events {
		if ev.Kind == trace.KindColl && ev.Coll == trace.CollOMPForEnd {
			t.Fatal("nowait loop produced an implicit-barrier event")
		}
	}
}

func TestLoopImplicitBarrierEvent(t *testing.T) {
	const T = 3
	tr := mustRun(t, T, func(tc *TC) {
		tc.For(T, ForOpt{Sched: Static}, func(i int) {})
	})
	n := 0
	for _, ev := range tr.Events {
		if ev.Kind == trace.KindColl && ev.Coll == trace.CollOMPForEnd {
			n++
		}
	}
	if n != T {
		t.Errorf("got %d loop-end barrier events, want %d", n, T)
	}
}

func TestStandaloneLock(t *testing.T) {
	lk := NewLock("standalone")
	var order []int
	var mu sync.Mutex
	tr := mustRun(t, 4, func(tc *TC) {
		lk.Set(tc)
		mu.Lock()
		order = append(order, tc.ThreadNum())
		mu.Unlock()
		tc.Work(0.02)
		lk.Unset(tc)
	})
	if len(order) != 4 {
		t.Fatalf("lock admitted %d threads", len(order))
	}
	// Total lock waiting = 0.02 * (0+1+2+3) with simultaneous arrivals.
	var total float64
	for _, ev := range tr.Events {
		if ev.Kind == trace.KindLock {
			total += ev.Aux
		}
	}
	if math.Abs(total-0.12) > 0.01 {
		t.Errorf("total lock wait = %v, want ≈ 0.12", total)
	}
}

func TestParallelForConvenience(t *testing.T) {
	var hits [20]atomic.Int32
	_, err := Run(RunOptions{Threads: 4}, func(ctx *xctx.Ctx, opt Options) {
		ParallelFor(ctx, opt, 20, ForOpt{Sched: Dynamic}, func(tc *TC, i int) {
			hits[i].Add(1)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Errorf("iteration %d ran %d times", i, hits[i].Load())
		}
	}
}

func TestTeamAccessors(t *testing.T) {
	mustRun(t, 2, func(tc *TC) {
		if tc.Ctx() == nil {
			t.Error("nil ctx")
		}
		before := tc.Now()
		tc.Work(0.5)
		if d := tc.Now() - before; math.Abs(d-0.5) > 1e-12 {
			t.Errorf("Now delta = %v", d)
		}
		tc.Begin("user_region")
		tc.End()
	})
}

func TestReduceCombinesAllThreads(t *testing.T) {
	const T = 5
	results := make([]float64, T)
	mustRun(t, T, func(tc *TC) {
		v := float64(tc.ThreadNum() + 1)
		results[tc.ThreadNum()] = tc.Reduce(func(a, b float64) float64 { return a + b }, v)
	})
	for i, r := range results {
		if r != 15 { // 1+2+3+4+5
			t.Errorf("thread %d reduce = %v, want 15", i, r)
		}
	}
}

func TestReduceDeterministicOrder(t *testing.T) {
	// Non-commutative combine exposes the combination order: it must be
	// thread order regardless of scheduling.
	const T = 4
	var out [T]float64
	for trial := 0; trial < 5; trial++ {
		mustRun(t, T, func(tc *TC) {
			v := float64(tc.ThreadNum() + 1)
			out[tc.ThreadNum()] = tc.Reduce(func(a, b float64) float64 { return a*10 + b }, v)
		})
		// ((1*10+2)*10+3)*10+4 = 1234.
		for i := 0; i < T; i++ {
			if out[i] != 1234 {
				t.Fatalf("trial %d thread %d: %v, want 1234", trial, i, out[i])
			}
		}
	}
}

func TestReduceSynchronizes(t *testing.T) {
	// Imbalanced arrivals: everyone leaves at the max arrival.
	const T = 3
	mustRun(t, T, func(tc *TC) {
		tc.Work(float64(tc.ThreadNum()) * 0.05)
		tc.Reduce(func(a, b float64) float64 { return a + b }, 1)
		if tc.Now() < 0.1 {
			t.Errorf("thread %d left reduction at %v, before last arrival", tc.ThreadNum(), tc.Now())
		}
	})
}

// Property-based check: every schedule × chunk × size covers each
// iteration exactly once.
func TestQuickScheduleCoverage(t *testing.T) {
	inv := func(nRaw, chunkRaw, thrRaw, schedRaw uint8) bool {
		n := int(nRaw % 80)
		chunk := int(chunkRaw % 7) // 0..6 (0 = default)
		threads := int(thrRaw%4) + 1
		sched := Schedule(schedRaw % 3)
		hits := make([]atomic.Int32, n)
		_, err := Run(RunOptions{Threads: threads}, func(ctx *xctx.Ctx, opt Options) {
			Parallel(ctx, opt, func(tc *TC) {
				tc.For(n, ForOpt{Sched: sched, Chunk: chunk}, func(i int) {
					hits[i].Add(1)
				})
			})
		})
		if err != nil {
			return false
		}
		for i := range hits {
			if hits[i].Load() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(inv, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
