package omp

import (
	"fmt"

	"repro/internal/trace"
	"repro/internal/vtime"
)

// Schedule selects the loop-iteration schedule of For.
type Schedule uint8

const (
	// Static divides iterations into fixed chunks assigned round-robin
	// (the default schedule: one contiguous block per thread).
	Static Schedule = iota
	// Dynamic hands chunks to threads as they become idle.
	Dynamic
	// Guided hands out exponentially shrinking chunks.
	Guided
)

// String names the schedule.
func (s Schedule) String() string {
	switch s {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	default:
		return fmt.Sprintf("schedule(%d)", uint8(s))
	}
}

// ForOpt configures a worksharing loop.
type ForOpt struct {
	Sched Schedule
	// Chunk is the chunk size (0 selects the schedule's default: block
	// partition for Static, 1 for Dynamic, minimum 1 for Guided).
	Chunk int
	// NoWait suppresses the implicit barrier at loop end.
	NoWait bool
}

// teamOp kinds.
const (
	opBarrier uint8 = iota
	opFor
	opSingle
	opReduce
)

// teamOp synchronizes the team through one worksharing or barrier
// construct.  All threads must encounter team-wide constructs in the same
// order; the per-thread sequence number enforces it.
type teamOp struct {
	kind    uint8
	id      uint64
	arrived int
	taken   int
	done    bool

	enter []float64

	// barrier / implicit-barrier results
	exit float64

	// dynamic loop state
	next    int       // next unassigned iteration
	total   int       // iteration count
	running int       // threads currently executing a chunk
	inLoop  int       // threads that entered the loop
	doneCnt int       // threads that left the loop
	clocks  []float64 // current virtual clock per thread (loop members)
	inSet   []bool    // thread entered the loop
	waiting []bool    // thread is idle at the dispenser

	// single
	chosen    int
	execDone  bool
	finishOne float64

	// reduce
	vals []float64
}

// getOp returns (creating if necessary) the op for sequence seq, checking
// construct agreement across threads.
func (tm *team) getOp(seq uint64, kind uint8, size int) *teamOp {
	op := tm.ops[seq]
	if op == nil {
		op = &teamOp{
			kind:    kind,
			id:      teamOpID(tm.id, seq),
			enter:   make([]float64, size),
			clocks:  make([]float64, size),
			inSet:   make([]bool, size),
			waiting: make([]bool, size),
			chosen:  -1,
		}
		tm.ops[seq] = op
	}
	if op.kind != kind {
		err := fmt.Errorf("omp: construct mismatch at sequence %d: %d vs %d", seq, kind, op.kind)
		tm.failErr = err
		tm.cond.Broadcast()
		tm.mu.Unlock()
		panic(teamAbort{err})
	}
	return op
}

// release accounts an op participant's departure and garbage-collects the
// op when the whole team has passed it.
func (tm *team) release(seq uint64, op *teamOp) {
	op.taken++
	if op.taken == tm.size {
		delete(tm.ops, seq)
	}
}

// barrierInternal implements the team barrier used both explicitly and as
// the implicit barrier of worksharing constructs.  collKind tags the trace
// event so the analyzer can attribute the wait to the right construct.
func (tc *TC) barrierInternal(collKind trace.CollKind, record bool) {
	tm := tc.team
	seq := tc.seq
	tc.seq++
	enter := tc.ctx.Now()

	tm.mu.Lock()
	op := tm.getOp(seq, opBarrier, tm.size)
	op.enter[tc.id] = enter
	op.arrived++
	if op.arrived == tm.size {
		m := op.enter[0]
		for _, e := range op.enter[1:] {
			if e > m {
				m = e
			}
		}
		op.exit = m + tm.cost.Barrier
		op.done = true
		tm.cond.Broadcast()
	} else {
		for !op.done {
			tm.checkFailedLocked()
			tm.cond.Wait()
		}
	}
	exit := op.exit
	id := op.id
	tm.release(seq, op)
	tm.mu.Unlock()

	if tc.ctx.Mode() == vtime.Virtual {
		tc.ctx.Clock.AdvanceTo(exit)
	}
	if record {
		tc.ctx.Record(trace.Event{
			Time: tc.ctx.Now(), Aux: enter, Kind: trace.KindColl,
			Coll: collKind, CRank: int32(tc.id), Root: -1,
			Comm: tm.id, Match: id,
		})
	}
}

// Barrier blocks until all team members arrive ("#pragma omp barrier").
func (tc *TC) Barrier() {
	tc.ctx.Enter("omp barrier")
	tc.barrierInternal(trace.CollOMPBarrier, true)
	tc.ctx.Exit()
}

// For executes a worksharing loop of n iterations over the team
// ("#pragma omp for").  Every team member must call it.  The body receives
// the iteration index.  Unless fo.NoWait is set, an implicit barrier
// follows the loop.
func (tc *TC) For(n int, fo ForOpt, body func(i int)) {
	if n < 0 {
		panic(fmt.Sprintf("omp: For with negative iteration count %d", n))
	}
	tc.forInternal("omp for", trace.CollOMPForEnd, n, fo, body)
}

// Sections distributes the given section bodies over the team
// ("#pragma omp sections"), one section per dynamic chunk, followed by an
// implicit barrier.
func (tc *TC) Sections(sections ...func()) {
	tc.forInternal("omp sections", trace.CollOMPSection, len(sections),
		ForOpt{Sched: Dynamic, Chunk: 1}, func(i int) { sections[i]() })
}

func (tc *TC) forInternal(region string, endKind trace.CollKind, n int, fo ForOpt, body func(i int)) {
	tc.ctx.Enter(region)
	switch fo.Sched {
	case Static:
		tc.staticLoop(n, fo.Chunk, body)
	case Dynamic, Guided:
		tc.dynamicLoop(n, fo, body)
	default:
		panic(fmt.Sprintf("omp: unknown schedule %v", fo.Sched))
	}
	if !fo.NoWait {
		tc.barrierInternal(endKind, true)
	} else {
		// The sequence number must stay aligned across threads even
		// without the barrier, which costs nothing extra here because
		// static loops don't allocate an op and dynamic loops allocate
		// exactly one.
		_ = endKind
	}
	tc.ctx.Exit()
}

// staticLoop runs this thread's statically assigned chunks; no
// coordination is required.
func (tc *TC) staticLoop(n, chunk int, body func(i int)) {
	T, me := tc.team.size, tc.id
	if chunk <= 0 {
		// Default: one contiguous block per thread.
		lo, hi := me*n/T, (me+1)*n/T
		for i := lo; i < hi; i++ {
			body(i)
		}
		return
	}
	for base := chunk * me; base < n; base += chunk * T {
		end := base + chunk
		if end > n {
			end = n
		}
		for i := base; i < end; i++ {
			body(i)
		}
	}
}

// dynamicLoop hands out chunks on demand.  In Virtual mode it performs
// deterministic greedy list scheduling: once the whole team has entered
// the loop, the next chunk always goes to the idle thread with the
// smallest virtual clock (ties to the smallest id).  Chunk bodies then
// execute one at a time in simulated order — real-time parallelism is
// traded for exact, reproducible virtual schedules.  In Real mode a shared
// dispenser hands chunks to genuinely parallel threads.
func (tc *TC) dynamicLoop(n int, fo ForOpt, body func(i int)) {
	tm := tc.team
	seq := tc.seq
	tc.seq++
	chunk := fo.Chunk
	if chunk <= 0 {
		chunk = 1
	}

	tm.mu.Lock()
	op := tm.getOp(seq, opFor, tm.size)
	if !op.inSet[tc.id] {
		op.inSet[tc.id] = true
		op.inLoop++
		op.total = n
	}
	op.clocks[tc.id] = tc.ctx.Now()

	if tm.mode == vtime.Real {
		// Real mode: plain chunk dispenser under the lock.
		for op.next < n {
			lo := op.next
			sz := chunkSize(fo, n-lo, tm.size, chunk)
			op.next += sz
			tm.mu.Unlock()
			for i := lo; i < lo+sz && i < n; i++ {
				body(i)
			}
			tm.mu.Lock()
		}
		op.doneCnt++
		tm.cond.Broadcast()
		tm.release(seq, op)
		tm.mu.Unlock()
		return
	}

	// Virtual mode: greedy list scheduling.
	op.waiting[tc.id] = true
	tm.cond.Broadcast()
	for {
		if op.next >= n {
			break
		}
		if op.inLoop == tm.size && op.running == 0 && tc.isMinClock(op) {
			lo := op.next
			sz := chunkSize(fo, n-lo, tm.size, chunk)
			op.next += sz
			op.running++
			op.waiting[tc.id] = false
			tm.mu.Unlock()

			tc.ctx.Clock.Advance(tm.cost.Dispatch)
			for i := lo; i < lo+sz && i < n; i++ {
				body(i)
			}

			tm.mu.Lock()
			op.clocks[tc.id] = tc.ctx.Now()
			op.running--
			op.waiting[tc.id] = true
			tm.cond.Broadcast()
			continue
		}
		tm.checkFailedLocked()
		tm.cond.Wait()
	}
	op.waiting[tc.id] = false
	op.doneCnt++
	tm.cond.Broadcast()
	tm.release(seq, op)
	tm.mu.Unlock()
}

// isMinClock reports whether tc is the waiting thread with the smallest
// clock (ties broken by id).  Caller holds tm.mu.
func (tc *TC) isMinClock(op *teamOp) bool {
	for i := 0; i < tc.team.size; i++ {
		if i == tc.id || !op.waiting[i] {
			continue
		}
		if op.clocks[i] < op.clocks[tc.id] {
			return false
		}
		if op.clocks[i] == op.clocks[tc.id] && i < tc.id {
			return false
		}
	}
	return op.waiting[tc.id]
}

// chunkSize computes the next chunk size for the schedule.
func chunkSize(fo ForOpt, remaining, threads, minChunk int) int {
	if fo.Sched == Guided {
		sz := remaining / (2 * threads)
		if sz < minChunk {
			sz = minChunk
		}
		if sz > remaining {
			sz = remaining
		}
		return sz
	}
	if minChunk > remaining {
		return remaining
	}
	return minChunk
}

// Single executes f on exactly one team member ("#pragma omp single"); the
// executor is the thread with the earliest arrival (ties to the smallest
// id).  An implicit barrier follows: no thread proceeds until f completed.
func (tc *TC) Single(f func()) {
	tm := tc.team
	tc.ctx.Enter("omp single")
	seq := tc.seq
	tc.seq++
	enter := tc.ctx.Now()

	tm.mu.Lock()
	op := tm.getOp(seq, opSingle, tm.size)
	op.enter[tc.id] = enter
	op.inSet[tc.id] = true
	op.arrived++
	if op.arrived == tm.size {
		// Choose the executor: earliest arrival, smallest id on ties.
		op.chosen = 0
		for i := 1; i < tm.size; i++ {
			if op.enter[i] < op.enter[op.chosen] {
				op.chosen = i
			}
		}
		tm.cond.Broadcast()
	}
	for op.chosen < 0 {
		tm.checkFailedLocked()
		tm.cond.Wait()
	}
	amChosen := op.chosen == tc.id
	if amChosen {
		tm.mu.Unlock()
		f()
		tm.mu.Lock()
		op.finishOne = tc.ctx.Now()
		op.execDone = true
		tm.cond.Broadcast()
	}
	for !op.execDone {
		tm.checkFailedLocked()
		tm.cond.Wait()
	}
	// Implicit barrier at max(all enters, executor finish).
	m := op.finishOne
	for i := 0; i < tm.size; i++ {
		if op.enter[i] > m {
			m = op.enter[i]
		}
	}
	exit := m + tm.cost.Barrier
	id := op.id
	tm.release(seq, op)
	tm.mu.Unlock()

	if tc.ctx.Mode() == vtime.Virtual {
		tc.ctx.Clock.AdvanceTo(exit)
	}
	tc.ctx.Record(trace.Event{
		Time: tc.ctx.Now(), Aux: enter, Kind: trace.KindColl,
		Coll: trace.CollOMPSingle, CRank: int32(tc.id), Root: int32(op.chosen),
		Comm: tm.id, Match: id,
	})
	tc.ctx.Exit()
}

// Reduce combines each thread's partial value with the associative,
// commutative combine function and returns the result to every thread —
// the runtime counterpart of OpenMP's reduction clause.  Like a barrier it
// synchronizes the team; the combination is applied in thread order, so
// the result is deterministic even for merely-approximately-associative
// float operations.
func (tc *TC) Reduce(combine func(a, b float64) float64, v float64) float64 {
	tm := tc.team
	tc.ctx.Enter("omp reduction")
	seq := tc.seq
	tc.seq++
	enter := tc.ctx.Now()

	tm.mu.Lock()
	op := tm.getOp(seq, opReduce, tm.size)
	if op.vals == nil {
		op.vals = make([]float64, tm.size)
	}
	op.vals[tc.id] = v
	op.enter[tc.id] = enter
	op.arrived++
	if op.arrived == tm.size {
		m := op.enter[0]
		for _, e := range op.enter[1:] {
			if e > m {
				m = e
			}
		}
		op.exit = m + tm.cost.Barrier
		op.done = true
		tm.cond.Broadcast()
	} else {
		for !op.done {
			tm.checkFailedLocked()
			tm.cond.Wait()
		}
	}
	acc := op.vals[0]
	for i := 1; i < tm.size; i++ {
		acc = combine(acc, op.vals[i])
	}
	exit := op.exit
	id := op.id
	tm.release(seq, op)
	tm.mu.Unlock()

	if tc.ctx.Mode() == vtime.Virtual {
		tc.ctx.Clock.AdvanceTo(exit)
	}
	tc.ctx.Record(trace.Event{
		Time: tc.ctx.Now(), Aux: enter, Kind: trace.KindColl,
		Coll: trace.CollOMPBarrier, CRank: int32(tc.id), Root: -1,
		Comm: tm.id, Match: id,
	})
	tc.ctx.Exit()
	return acc
}

// Master executes f on thread 0 only ("#pragma omp master"); there is no
// implied barrier.
func (tc *TC) Master(f func()) {
	if tc.id != 0 {
		return
	}
	tc.ctx.Enter("omp master")
	f()
	tc.ctx.Exit()
}

// Parallel starts a nested parallel region from within a team
// ("#pragma omp parallel" encountered inside a parallel region).  The
// nested team forks from this thread's context.
func (tc *TC) Parallel(opt Options, body func(tc *TC)) {
	Parallel(tc.ctx, opt, body)
}
