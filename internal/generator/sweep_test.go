package generator

import (
	"strings"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/core"
)

// TestSweepOMPParadigm drives the pure-OpenMP branch of runPoint: the
// sweep must execute on a thread team (no MPI world) and still detect the
// property.
func TestSweepOMPParadigm(t *testing.T) {
	spec, _ := core.Get("imbalance_at_omp_barrier")
	pts := GridDistr(spec, "distr", []string{"block2", "linear"}, 1, 4)
	rs, err := Sweep(spec.Name, pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("got %d results, want 2", len(rs))
	}
	for _, r := range rs {
		if r.Detected != analyzer.PropOMPBarrier {
			t.Errorf("point %s: detected %q", r.Point.Label, r.Detected)
		}
		if r.Wait <= 0 {
			t.Errorf("point %s: no waiting measured", r.Point.Label)
		}
		if r.TopProperty != analyzer.PropOMPBarrier {
			t.Errorf("point %s: top finding %q", r.Point.Label, r.TopProperty)
		}
		if r.Expected <= 0 {
			t.Errorf("point %s: expected %v, want positive closed form", r.Point.Label, r.Expected)
		}
	}
}

// TestSweepNoClosedForm covers properties without a theoretical wait:
// Expected must be negative and FormatSweep must render "n/a".
func TestSweepNoClosedForm(t *testing.T) {
	spec, _ := core.Get("dominated_by_communication")
	pts := GridFloat(spec, "msgwork", []float64{1e-5}, 4, 1)
	rs, err := Sweep(spec.Name, pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Expected >= 0 {
		t.Fatalf("expected negative closed form, got %+v", rs)
	}
	out := FormatSweep(spec.Name, rs)
	if !strings.Contains(out, "n/a") {
		t.Errorf("FormatSweep did not render n/a for missing closed form:\n%s", out)
	}
}

// TestSweepPointError covers the error path: an unresolvable distribution
// makes the point fail and Sweep must surface the point label.
func TestSweepPointError(t *testing.T) {
	spec, _ := core.Get("imbalance_at_mpi_barrier")
	a := spec.Defaults()
	ds := a.Distr["distr"]
	ds.Name = "no_such_distribution"
	a.Distr["distr"] = ds
	_, err := Sweep(spec.Name, []SweepPoint{{Label: "bad-point", Args: a, Procs: 2, Threads: 1}})
	if err == nil {
		t.Fatal("sweep with unresolvable distribution succeeded")
	}
	if !strings.Contains(err.Error(), "bad-point") {
		t.Errorf("error does not name the failing point: %v", err)
	}
}

// TestGridBuilders pins the labels and environment fields of the two grid
// constructors.
func TestGridBuilders(t *testing.T) {
	spec, _ := core.Get("late_sender")
	pts := GridFloat(spec, "extrawork", []float64{0.01, 0.03}, 6, 2)
	if len(pts) != 2 {
		t.Fatalf("GridFloat: %d points", len(pts))
	}
	if pts[0].Label != "extrawork=0.01" || pts[1].Label != "extrawork=0.03" {
		t.Errorf("GridFloat labels: %q, %q", pts[0].Label, pts[1].Label)
	}
	if pts[0].Procs != 6 || pts[0].Threads != 2 {
		t.Errorf("GridFloat environment: %d x %d", pts[0].Procs, pts[0].Threads)
	}
	if pts[0].Args.Float["extrawork"] != 0.01 {
		t.Errorf("GridFloat did not set the parameter: %v", pts[0].Args.Float)
	}
	if pts[0].Args.Float["basework"] != core.DefaultBasework {
		t.Errorf("GridFloat did not keep defaults: %v", pts[0].Args.Float)
	}

	dspec, _ := core.Get("imbalance_at_mpi_barrier")
	dpts := GridDistr(dspec, "distr", []string{"peak"}, 4, 1)
	if len(dpts) != 1 || dpts[0].Label != "distr=peak" {
		t.Fatalf("GridDistr points: %+v", dpts)
	}
	if ds := dpts[0].Args.Distr["distr"]; ds.Name != "peak" || ds.Low != core.DefaultBasework {
		t.Errorf("GridDistr descriptor: %+v", ds)
	}
}
