package generator

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/asl"
	"repro/internal/core"
)

// genScenario is an ASL scenario used to exercise the generator's
// source-embedding path (the {{if .ASL}} template branch).
const genScenario = `
scenario gen_probe_scenario {
    help "generator embedding probe";
    param extra float = 0.02 in [0.01, 0.04];
    param r     int   = 2    in [1, 4];
    inject delayed_send(0.004, extra, r);
    severity floor(ranks() / 2) * extra * r;
}
`

// registerGenScenario registers genScenario for one test and returns its
// spec; the registration is removed on cleanup.
func registerGenScenario(t *testing.T) *core.Spec {
	t.Helper()
	names, err := asl.RegisterSource(genScenario)
	if err != nil {
		t.Fatalf("RegisterSource: %v", err)
	}
	t.Cleanup(func() { asl.Unregister(names...) })
	spec, ok := core.Get(names[0])
	if !ok {
		t.Fatalf("scenario %s not in registry", names[0])
	}
	return spec
}

// TestGenerateEmbedsASLSource: a program generated for an ASL scenario
// carries the scenario text and re-registers it before running, so it is
// self-contained — the scenario is not a built-in of the ats module it
// links against.
func TestGenerateEmbedsASLSource(t *testing.T) {
	spec := registerGenScenario(t)
	src, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	text := string(src)
	for _, want := range []string{
		"const aslSource = ",
		"scenario gen_probe_scenario",
		"ats.RegisterASL(aslSource)",
		`ats.RunProperty("gen_probe_scenario"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("generated program missing %q:\n%s", want, text)
		}
	}
	// Parameter flags derive from the compiled spec like any built-in.
	for _, want := range []string{`flag.Float64("extra"`, `flag.Int("r"`} {
		if !strings.Contains(text, want) {
			t.Errorf("generated program missing %q", want)
		}
	}
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "x.go", src, 0); err != nil {
		t.Fatalf("generated scenario program does not parse: %v\n%s", err, src)
	}
}

// TestGenerateBuiltinsOmitASLBlock: built-in property programs must not
// grow the re-registration preamble.
func TestGenerateBuiltinsOmitASLBlock(t *testing.T) {
	spec, _ := core.Get("late_sender")
	src, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(src), "aslSource") {
		t.Errorf("built-in program carries ASL preamble:\n%s", src)
	}
}

func TestGenerateAllPropertiesParse(t *testing.T) {
	for _, spec := range core.All() {
		src, err := Generate(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, spec.Name+".go", src, 0)
		if err != nil {
			t.Fatalf("%s: generated code does not parse: %v\n%s", spec.Name, err, src)
		}
		if f.Name.Name != "main" {
			t.Errorf("%s: package %s, want main", spec.Name, f.Name.Name)
		}
	}
}

func TestGeneratedFlagsMatchParams(t *testing.T) {
	// Every parameter of the spec must appear as a flag registration in
	// the generated source; distribution parameters expand to five flags.
	for _, spec := range core.All() {
		src, err := Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		text := string(src)
		for _, p := range spec.Params {
			switch p.Kind {
			case core.ParamFloat:
				if !strings.Contains(text, `flag.Float64("`+p.Name+`"`) {
					t.Errorf("%s: missing float flag %q", spec.Name, p.Name)
				}
			case core.ParamInt:
				if !strings.Contains(text, `flag.Int("`+p.Name+`"`) {
					t.Errorf("%s: missing int flag %q", spec.Name, p.Name)
				}
			case core.ParamDistr:
				for _, suffix := range []string{"", "_low", "_high", "_med", "_n"} {
					if !strings.Contains(text, `"`+p.Name+suffix+`"`) {
						t.Errorf("%s: missing distribution flag %q", spec.Name, p.Name+suffix)
					}
				}
			}
		}
		if !strings.Contains(text, `ats.RunProperty("`+spec.Name+`"`) {
			t.Errorf("%s: generated program does not run its property", spec.Name)
		}
	}
}

func TestGeneratedProgramUsesDefaults(t *testing.T) {
	spec, _ := core.Get("late_broadcast")
	src, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	// The root parameter's default (0) and the reps default must appear.
	if !strings.Contains(string(src), `flag.Int("root", 0,`) {
		t.Errorf("root default missing:\n%s", src)
	}
}

func TestGenerateAllWritesFiles(t *testing.T) {
	dir := t.TempDir()
	paths, err := GenerateAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != len(core.All()) {
		t.Errorf("generated %d programs, want %d", len(paths), len(core.All()))
	}
	for _, p := range paths {
		if filepath.Base(p) != "main.go" {
			t.Errorf("unexpected file name %q", p)
		}
		if _, err := os.Stat(p); err != nil {
			t.Errorf("missing file: %v", err)
		}
	}
}

// TestGeneratedIdentifiersAreValid ensures no parameter name produces an
// invalid Go identifier in the template (flag_<name> variables).
func TestGeneratedIdentifiersAreValid(t *testing.T) {
	for _, spec := range core.All() {
		src, err := Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, "x.go", src, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Walk and ensure all identifiers are sane (parser would have
		// failed otherwise; this asserts the variables exist).
		found := false
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && strings.HasPrefix(id.Name, "flag_") {
				found = true
			}
			return true
		})
		if len(spec.Params) > 0 && !found {
			t.Errorf("%s: no parameter variables generated", spec.Name)
		}
	}
}

func TestSweepSeverityMonotone(t *testing.T) {
	spec, _ := core.Get("late_sender")
	pts := GridFloat(spec, "extrawork", []float64{0.01, 0.02, 0.04}, 4, 1)
	rs, err := Sweep("late_sender", pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("got %d results", len(rs))
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].Wait <= rs[i-1].Wait {
			t.Errorf("wait not increasing: %v then %v", rs[i-1].Wait, rs[i].Wait)
		}
	}
	// Measured ≈ expected for each point.
	for _, r := range rs {
		if r.Expected > 0 {
			rel := (r.Wait - r.Expected) / r.Expected
			if rel < -0.15 || rel > 0.15 {
				t.Errorf("point %s: wait %v vs expected %v", r.Point.Label, r.Wait, r.Expected)
			}
		}
		if r.TopProperty != "late_sender" {
			t.Errorf("point %s: top = %s", r.Point.Label, r.TopProperty)
		}
	}
}

func TestSweepAcrossDistributions(t *testing.T) {
	spec, _ := core.Get("imbalance_at_mpi_barrier")
	pts := GridDistr(spec, "distr", []string{"block2", "cyclic2", "linear", "peak"}, 8, 1)
	rs, err := Sweep("imbalance_at_mpi_barrier", pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Wait <= 0 {
			t.Errorf("point %s: no barrier wait measured", r.Point.Label)
		}
	}
	out := FormatSweep("imbalance_at_mpi_barrier", rs)
	for _, want := range []string{"block2", "cyclic2", "linear", "peak", "wait(s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted sweep missing %q:\n%s", want, out)
		}
	}
}

func TestSweepUnknownProperty(t *testing.T) {
	if _, err := Sweep("no_such_property", nil); err == nil {
		t.Error("unknown property accepted")
	}
}
