package generator

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/analyzer"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/omp"
	"repro/internal/trace"
	"repro/internal/xctx"
)

// SweepPoint is one experiment configuration: the property arguments plus
// the parallel environment size.
type SweepPoint struct {
	Label   string
	Args    core.Args
	Procs   int
	Threads int
}

// SweepResult records the outcome of one experiment.
type SweepResult struct {
	Point SweepPoint
	// Detected is the analyzer property expected for this function.
	Detected string
	// Wait is the measured accumulated waiting time of that property.
	Wait float64
	// Severity is the measured severity.
	Severity float64
	// Expected is the theoretical waiting time (negative if no closed
	// form exists).
	Expected float64
	// TopProperty is the analyzer's highest-ranked significant finding
	// ("" if the program analyzed clean).
	TopProperty string
}

// Sweep runs a property function over a series of experiment points —
// the "more extensive experiments … executed through scripting languages
// or automatic experiment management systems such as ZENTURIO" of §3.2.
// Points run concurrently on the campaign pool (each owns a fresh world in
// virtual time); results keep the order of points.
func Sweep(name string, points []SweepPoint) ([]SweepResult, error) {
	spec, ok := core.Get(name)
	if !ok {
		return nil, fmt.Errorf("generator: unknown property %q", name)
	}
	want := analyzer.ExpectedDetection[name]
	out, err := campaign.Run(len(points), campaign.Options{}, func(i int) (SweepResult, error) {
		pt := points[i]
		tr, err := runPoint(spec, pt)
		if err != nil {
			return SweepResult{}, fmt.Errorf("generator: point %q: %w", pt.Label, err)
		}
		rep := analyzer.Analyze(tr, analyzer.Options{})
		res := SweepResult{
			Point:    pt,
			Detected: want,
			Wait:     rep.Wait(want),
			Severity: rep.Severity(want),
			Expected: spec.ExpectedWait(pt.Procs, pt.Threads, pt.Args),
		}
		if top := rep.Top(); top != nil {
			res.TopProperty = top.Property
		}
		return res, nil
	})
	if err != nil {
		var ce *campaign.Error
		if errors.As(err, &ce) {
			return nil, ce.Err // surface the point's own error text
		}
		return nil, err
	}
	return out, nil
}

// runPoint executes the spec in a fresh environment (mirrors
// ats.RunProperty, reimplemented here to avoid an import cycle with the
// facade package).
func runPoint(spec *core.Spec, pt SweepPoint) (*trace.Trace, error) {
	team := omp.Options{Threads: pt.Threads}
	if spec.Paradigm == core.ParadigmOMP {
		return omp.Run(omp.RunOptions{Threads: pt.Threads}, func(ctx *xctx.Ctx, _ omp.Options) {
			spec.Run(core.Env{Ctx: ctx, OMP: team}, pt.Args)
		})
	}
	return mpi.Run(mpi.Options{Procs: pt.Procs}, func(c *mpi.Comm) {
		spec.Run(core.Env{Comm: c, Ctx: c.Ctx(), OMP: team}, pt.Args)
	})
}

// GridFloat builds sweep points varying one float parameter over values,
// holding everything else at the spec defaults.
func GridFloat(spec *core.Spec, param string, values []float64, procs, threads int) []SweepPoint {
	var pts []SweepPoint
	for _, v := range values {
		a := spec.Defaults()
		a.Float[param] = v
		pts = append(pts, SweepPoint{
			Label:   fmt.Sprintf("%s=%g", param, v),
			Args:    a,
			Procs:   procs,
			Threads: threads,
		})
	}
	return pts
}

// GridDistr builds sweep points varying the distribution function of a
// distribution parameter, holding its descriptor values at the defaults.
func GridDistr(spec *core.Spec, param string, names []string, procs, threads int) []SweepPoint {
	var pts []SweepPoint
	for _, n := range names {
		a := spec.Defaults()
		ds := a.Distr[param]
		ds.Name = n
		a.Distr[param] = ds
		pts = append(pts, SweepPoint{
			Label:   fmt.Sprintf("%s=%s", param, n),
			Args:    a,
			Procs:   procs,
			Threads: threads,
		})
	}
	return pts
}

// FormatSweep renders sweep results as an aligned table.
func FormatSweep(name string, rs []SweepResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "sweep: %s\n", name)
	fmt.Fprintf(&b, "%-24s %6s %8s %12s %12s %10s %s\n",
		"point", "procs", "threads", "wait(s)", "expected(s)", "severity", "top finding")
	for _, r := range rs {
		exp := "n/a"
		if r.Expected >= 0 {
			exp = fmt.Sprintf("%.6f", r.Expected)
		}
		fmt.Fprintf(&b, "%-24s %6d %8d %12.6f %12s %9.2f%% %s\n",
			r.Point.Label, r.Point.Procs, r.Point.Threads,
			r.Wait, exp, r.Severity*100, r.TopProperty)
	}
	return b.String()
}
