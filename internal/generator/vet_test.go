package generator

import (
	"bytes"
	"fmt"
	"go/format"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// TestGeneratedProgramsGofmtClean asserts every generated program is in
// canonical gofmt form — formatting a second time must be a no-op, so any
// template drift (stray whitespace, misaligned declarations) fails here.
func TestGeneratedProgramsGofmtClean(t *testing.T) {
	for _, spec := range core.All() {
		src, err := Generate(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		formatted, err := format.Source(src)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if !bytes.Equal(src, formatted) {
			t.Errorf("%s: generated program is not gofmt-clean:\n%s", spec.Name, src)
		}
	}
}

// TestGeneratedProgramsVet compiles representative generated programs with
// `go vet` in a throwaway module that replaces the repro dependency with
// this repository — the strongest template-drift gate short of running
// them: vet type-checks every call against the real ats/core packages.
func TestGeneratedProgramsVet(t *testing.T) {
	if testing.Short() {
		t.Skip("go vet of generated programs is not short")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go binary not available")
	}
	repoRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	gomod := fmt.Sprintf("module genprobe\n\ngo 1.22\n\nrequire repro v0.0.0\n\nreplace repro => %s\n", repoRoot)
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(gomod), 0o644); err != nil {
		t.Fatal(err)
	}

	// One program per parameter shape: floats+rank int, distribution, a
	// pure-OpenMP property, and an ASL scenario (the source-embedding
	// template branch type-checks against the real ats.RegisterASL).
	registerGenScenario(t)
	for _, name := range []string{"late_broadcast", "imbalance_at_mpi_barrier", "serialization_at_omp_critical", "gen_probe_scenario"} {
		spec, ok := core.Get(name)
		if !ok {
			t.Fatalf("unknown property %q", name)
		}
		src, err := Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		sub := filepath.Join(dir, name)
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(sub, "main.go"), src, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	cmd := exec.Command(goBin, "vet", "./...")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOWORK=off", "GOFLAGS=-mod=mod")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet on generated programs failed: %v\n%s", err, out)
	}
}
