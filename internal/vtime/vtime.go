// Package vtime provides the dual-mode clock underlying the ATS runtime.
//
// The APART Test Suite wants synthetic programs whose pathological waiting
// times are controlled by the user.  The original C prototype approximated
// work by a calibrated busy-wait loop against wall-clock time, which the
// paper itself notes is "not guaranteed to be stable especially under heavy
// work load".  This reproduction therefore supports two clock modes:
//
//   - Virtual: every executor (MPI process, OpenMP thread) carries its own
//     logical clock.  Work advances the clock exactly; communication and
//     synchronization combine clocks algebraically (a receive completes at
//     the maximum of the receiver's clock and the message arrival time, a
//     barrier releases everyone at the maximum arrival, and so on).  All
//     timestamps are exact and runs are deterministic, which makes the
//     suite a precise calibration instrument for analysis tools.
//
//   - Real: executors burn CPU for the requested duration using a
//     calibrated spin loop, and timestamps come from the wall clock.  This
//     preserves the noisy character of the original ATS prototype and is
//     used for intrusiveness/overhead experiments.
package vtime

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects how executors account for time.
type Mode uint8

const (
	// Virtual is the deterministic logical-clock mode (default).
	Virtual Mode = iota
	// Real uses wall-clock timestamps and calibrated busy-wait work.
	Real
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Virtual:
		return "virtual"
	case Real:
		return "real"
	default:
		return "unknown"
	}
}

// Perturber adjusts the durations a Virtual clock accounts locally,
// modeling measurement-pipeline disturbances (clock-rate skew, straggler
// executors, transient OS noise) while keeping runs fully deterministic:
// a Perturber must be a pure function of its construction seed and the
// sequence of PerturbAdvance calls it observes.  It is invoked only from
// the clock's owning goroutine, so implementations need no locking.
type Perturber interface {
	// PerturbAdvance maps a locally accounted duration d (seconds),
	// starting at virtual time now, to the perturbed duration the clock
	// actually advances by.  Returning d unchanged is the identity.
	PerturbAdvance(now, d float64) float64
	// Fork derives an independent, deterministic child perturber for a
	// sub-executor (OpenMP thread fork).  Callers fork in a fixed
	// program order, so a sequence-counter derivation is deterministic.
	Fork() Perturber
}

// Clock is a per-executor time source.  In Virtual mode it is a logical
// clock advanced explicitly; in Real mode it reports wall time relative to
// an epoch shared by all executors of a run.  The clock has a single
// writer (its owning executor); reads are safe from any goroutine — the
// MPI substrate's deterministic wildcard matching inspects other ranks'
// clocks concurrently.
type Clock struct {
	mode  Mode
	now   atomic.Uint64 // Float64bits of virtual seconds (Virtual mode)
	epoch time.Time     // shared run epoch (Real mode only)
	pert  Perturber     // optional perturbation hook (Virtual mode only)
}

// NewClock returns a clock in the given mode.  All clocks belonging to one
// run must share the same epoch so their timestamps are comparable.
func NewClock(mode Mode, epoch time.Time) *Clock {
	return &Clock{mode: mode, epoch: epoch}
}

// Fork returns a child clock starting at the parent's current time.  It is
// used when an executor spawns sub-executors (OpenMP fork, nested teams).
// An installed perturber is forked along with the clock, so sub-executors
// inherit their parent's perturbation deterministically.
func (c *Clock) Fork() *Clock {
	f := &Clock{mode: c.mode, epoch: c.epoch}
	f.now.Store(math.Float64bits(c.Now()))
	if c.pert != nil {
		f.pert = c.pert.Fork()
	}
	return f
}

// SetPerturber installs (or, with nil, removes) the perturbation hook.
// It must be called before the clock's executor starts running; the hook
// only affects Virtual mode (Real mode is naturally noisy already).
func (c *Clock) SetPerturber(p Perturber) { c.pert = p }

// Mode reports the clock mode.
func (c *Clock) Mode() Mode { return c.mode }

// Epoch returns the shared run epoch (Real mode).
func (c *Clock) Epoch() time.Time { return c.epoch }

// Now returns the current time in seconds since the run epoch.
func (c *Clock) Now() float64 {
	if c.mode == Virtual {
		return math.Float64frombits(c.now.Load())
	}
	return time.Since(c.epoch).Seconds()
}

// Advance moves the clock forward by d seconds.  In Virtual mode this is a
// pure bookkeeping operation; in Real mode it spins the CPU for d seconds
// using the calibrated loop (see Spin).  Negative durations are ignored.
func (c *Clock) Advance(d float64) {
	if d <= 0 {
		return
	}
	if c.mode == Virtual {
		now := math.Float64frombits(c.now.Load())
		if c.pert != nil {
			if d = c.pert.PerturbAdvance(now, d); d <= 0 {
				return
			}
		}
		c.now.Store(math.Float64bits(now + d))
		return
	}
	Spin(d)
}

// AdvanceTo moves a Virtual clock forward to time t if t is in the future;
// earlier times are ignored (clocks never run backwards).  In Real mode the
// call is a no-op: real executors reach future times by genuinely blocking
// or working.
func (c *Clock) AdvanceTo(t float64) {
	if c.mode == Virtual && t > math.Float64frombits(c.now.Load()) {
		c.now.Store(math.Float64bits(t))
	}
}

// calibration state for the Real-mode spin loop.
var (
	calOnce    sync.Once
	itersPerNs float64
)

// spinChunk is the unit of uninterruptible spinning.  The loop body below
// mixes integer arithmetic through a small state machine that the compiler
// cannot eliminate.
func spinChunk(iters int64) int64 {
	acc := int64(-7046029254386353131) // 0x9e3779b97f4a7c15 as int64
	for i := int64(0); i < iters; i++ {
		acc ^= acc << 13
		acc ^= acc >> 7
		acc ^= acc << 17
	}
	return acc
}

// spinSink defeats dead-code elimination of spinChunk.
var spinSink int64

// Calibrate measures the spin-loop rate.  It is called automatically on the
// first Spin but may be invoked explicitly (e.g. at world start) so the
// measurement does not perturb the first timed region.  This mirrors the
// "configuration phase during installation" of the original ATS, where the
// iterations-per-second constant is determined by calibration programs.
func Calibrate() {
	calOnce.Do(func() {
		const probe = 1 << 21
		// Warm up, then time a probe batch.
		spinSink += spinChunk(probe / 4)
		start := time.Now()
		spinSink += spinChunk(probe)
		elapsed := time.Since(start)
		if elapsed <= 0 {
			elapsed = time.Nanosecond
		}
		itersPerNs = float64(probe) / float64(elapsed.Nanoseconds())
		if itersPerNs <= 0 {
			itersPerNs = 1
		}
	})
}

// Spin busy-waits for approximately d seconds without calling time functions
// in the hot loop (the paper's do_work avoids timer syscalls for the same
// reason).  Accuracy is on the order of the calibration error; long spins
// re-check the wall clock at coarse intervals to bound drift.
func Spin(d float64) {
	if d <= 0 {
		return
	}
	Calibrate()
	deadline := time.Now().Add(time.Duration(d * float64(time.Second)))
	remainingNs := d * 1e9
	for remainingNs > 0 {
		chunkNs := remainingNs
		const maxChunkNs = 2e6 // re-check the clock every ~2ms
		if chunkNs > maxChunkNs {
			chunkNs = maxChunkNs
		}
		spinSink += spinChunk(int64(chunkNs * itersPerNs))
		remainingNs = float64(time.Until(deadline).Nanoseconds())
	}
}
