package vtime

import (
	"runtime"
	"testing"
	"time"
)

func TestVirtualClockAdvance(t *testing.T) {
	c := NewClock(Virtual, time.Now())
	if c.Now() != 0 {
		t.Errorf("fresh clock = %v", c.Now())
	}
	c.Advance(1.25)
	c.Advance(0.75)
	if c.Now() != 2.0 {
		t.Errorf("clock = %v, want 2", c.Now())
	}
	c.Advance(-5) // ignored
	if c.Now() != 2.0 {
		t.Errorf("negative advance moved clock: %v", c.Now())
	}
}

func TestVirtualAdvanceToMonotone(t *testing.T) {
	c := NewClock(Virtual, time.Now())
	c.Advance(3)
	c.AdvanceTo(2) // in the past: ignored
	if c.Now() != 3 {
		t.Errorf("clock went backwards: %v", c.Now())
	}
	c.AdvanceTo(5)
	if c.Now() != 5 {
		t.Errorf("AdvanceTo failed: %v", c.Now())
	}
}

func TestFork(t *testing.T) {
	c := NewClock(Virtual, time.Now())
	c.Advance(1)
	f := c.Fork()
	if f.Now() != 1 {
		t.Errorf("fork starts at %v, want 1", f.Now())
	}
	f.Advance(1)
	if c.Now() != 1 {
		t.Errorf("child advance moved parent: %v", c.Now())
	}
	if f.Mode() != c.Mode() {
		t.Error("fork changed mode")
	}
}

func TestRealClockTracksWall(t *testing.T) {
	epoch := time.Now()
	c := NewClock(Real, epoch)
	t0 := c.Now()
	time.Sleep(10 * time.Millisecond)
	t1 := c.Now()
	if t1-t0 < 0.005 {
		t.Errorf("real clock did not advance: %v -> %v", t0, t1)
	}
	// AdvanceTo is a no-op in real mode.
	c.AdvanceTo(1e9)
	if c.Now() > 1e6 {
		t.Error("AdvanceTo affected a real clock")
	}
}

func TestModeString(t *testing.T) {
	if Virtual.String() != "virtual" || Real.String() != "real" {
		t.Error("mode strings wrong")
	}
	if Mode(9).String() != "unknown" {
		t.Error("unknown mode string")
	}
}

func TestSpinAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("real spin in -short mode")
	}
	if runtime.NumCPU() < 2 {
		// Contended single-CPU runs (full suite, race detector) stretch
		// the spin arbitrarily; only the lower bound would be meaningful.
		t.Skip("needs an uncontended CPU for timing accuracy")
	}
	Calibrate()
	const want = 20 * time.Millisecond
	start := time.Now()
	Spin(want.Seconds())
	got := time.Since(start)
	if got < want*8/10 || got > want*3 {
		t.Errorf("Spin(%v) took %v", want, got)
	}
}

func TestSpinZeroNegative(t *testing.T) {
	start := time.Now()
	Spin(0)
	Spin(-1)
	if time.Since(start) > 50*time.Millisecond {
		t.Error("zero/negative spin took too long")
	}
}

func TestRealAdvanceSpins(t *testing.T) {
	if testing.Short() {
		t.Skip("real spin in -short mode")
	}
	c := NewClock(Real, time.Now())
	start := time.Now()
	c.Advance(0.02)
	if time.Since(start) < 15*time.Millisecond {
		t.Error("real-mode Advance returned too quickly")
	}
}
