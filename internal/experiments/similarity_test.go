package experiments

import (
	"io"
	"testing"
)

// TestSimilaritySweep smoke-tests the recall axis at a small corpus
// size; the full ≥10⁴-profile recall bound lives in internal/similarity
// (TestQueryRecallAtScale).
func TestSimilaritySweep(t *testing.T) {
	res, err := Similarity(io.Discard, []int{2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 {
		t.Fatalf("points = %d, want 1", len(res.Points))
	}
	pt := res.Points[0]
	if pt.Profiles != 2000 || pt.Queries != 100 || pt.K != 10 {
		t.Fatalf("point shape = %+v", pt)
	}
	if pt.Recall < 0.85 {
		t.Errorf("recall = %.3f at 2000 profiles, want >= 0.85", pt.Recall)
	}
	if pt.Probed > 0.25 {
		t.Errorf("probed = %.1f%% of the corpus, want sublinear", pt.Probed*100)
	}

	// Determinism: the sweep is a pure function of its sizes.
	again, err := Similarity(io.Discard, []int{2000})
	if err != nil {
		t.Fatal(err)
	}
	if again.Points[0] != pt {
		t.Errorf("second sweep differs: %+v != %+v", again.Points[0], pt)
	}
}
