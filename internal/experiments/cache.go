package experiments

// Result-cache wiring for experiment sweeps, mirroring
// conformance.SetResultCache: CLIs install the store once and every
// memoizable sweep (currently the perturbed negative-correctness table)
// replays cached rows instead of re-running world→trace→analyze.
//
// Memoization is disabled automatically while a profile sink is
// installed (SetProfileSink): a cached row cannot re-emit the trace and
// report the sink needs, so baseline-capturing runs always execute for
// real.  Correctness degrades toward recomputation, never toward stale
// emission.

import (
	"sync/atomic"

	"repro/internal/campaign"
	"repro/internal/mpi"
	"repro/internal/profile"
	"repro/internal/rescache"
)

// resultCache is the installed process-wide store (nil: caching off).
var resultCache atomic.Pointer[rescache.Store]

// SetResultCache installs (or, with nil, removes) the process-wide
// result cache consulted by memoizable experiment sweeps.
func SetResultCache(s *rescache.Store) { resultCache.Store(s) }

// memoCache returns the installed store as a campaign.Cache, or nil —
// typed so a nil store never becomes a non-nil interface.
func memoCache() campaign.Cache {
	if s := resultCache.Load(); s != nil {
		return s
	}
	return nil
}

// perturbedKeyDoc is everything one perturbed negative-correctness cell
// depends on: the sweep coordinates, the shape, and the versions of the
// machinery that computed it (engine and profile schema — same
// invalidation discipline as the conformance keys).
type perturbedKeyDoc struct {
	Kind          string `json:"kind"`
	Level         int    `json:"level"`
	Program       string `json:"program"`
	Procs         int    `json:"procs"`
	Threads       int    `json:"threads"`
	PerturbSeed   uint64 `json:"perturb_seed"`
	Engine        string `json:"engine"`
	EngineVersion int    `json:"engine_version"`
	ProfileSchema int    `json:"profile_schema"`
}

// perturbedCellKey derives the content key of one cell of the perturbed
// negative-correctness table.
func perturbedCellKey(level int, program string, procs, threads int, perturbSeed uint64) (string, error) {
	eng := mpi.EffectiveDefault()
	return rescache.Key(perturbedKeyDoc{
		Kind:          "experiments/perturbed_negative",
		Level:         level,
		Program:       program,
		Procs:         procs,
		Threads:       threads,
		PerturbSeed:   perturbSeed,
		Engine:        eng.String(),
		EngineVersion: eng.Version(),
		ProfileSchema: profile.SchemaVersion,
	})
}
