package experiments

import (
	"fmt"
	"io"

	"repro/internal/analyzer"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/omp"
	"repro/internal/perturb"
	"repro/internal/trace"
	"repro/internal/xctx"
)

// PerturbedNegativeRow is one (perturbation level × program) cell of the
// perturbed negative-correctness table.
type PerturbedNegativeRow struct {
	Level       int
	Program     string
	TopProperty string  // "" when no significant finding
	TopSeverity float64 // severity of the top finding
	MaxWait     float64 // worst waiting time of any non-info property (s)
	Clean       bool    // no significant finding at the default threshold
}

// PerturbedNegativeCorrectness reruns the paper's negative-correctness
// table under a ladder of deterministic perturbation profiles (package
// perturb): the same well-tuned programs, but with clock-rate skew,
// stragglers, message/collective jitter and OS-noise bursts injected into
// the virtual-time engine.  Level 0 must reproduce the unperturbed table;
// higher levels show how quickly "well-tuned" stops being true on a noisy
// machine — the waits the analyzer then reports are real consequences of
// the injected disturbance, which is exactly why robust oracles (package
// conformance) calibrate their noise floor instead of hard-coding it.
// Every run is a pure function of (level, shape), so the table is
// byte-reproducible.
func PerturbedNegativeCorrectness(w io.Writer, procs, threads int, levels []int) ([]PerturbedNegativeRow, error) {
	if len(levels) == 0 {
		levels = []int{0, 1, 2, 3}
	}
	fmt.Fprintln(w, "== negative correctness under deterministic perturbation ==")
	fmt.Fprintf(w, "%-8s %-30s %-28s %10s %12s\n",
		"level", "program", "top finding", "severity", "max wait(s)")

	// The same three well-tuned programs as NegativeCorrectness, with the
	// perturbation model threaded through the run options.
	const perturbSeed = 1
	programs := []struct {
		name string
		run  func(m *perturb.Model) (*trace.Trace, error)
	}{
		{"negative_balanced_mpi", func(m *perturb.Model) (*trace.Trace, error) {
			return mpi.Run(mpi.Options{Procs: procs, Perturb: m}, func(c *mpi.Comm) {
				core.NegativeBalancedMPI(c, 0.02, 10)
			})
		}},
		{"negative_balanced_omp", func(m *perturb.Model) (*trace.Trace, error) {
			return omp.Run(omp.RunOptions{Threads: threads, Perturb: m}, func(ctx *xctx.Ctx, opt omp.Options) {
				core.NegativeBalancedOMP(ctx, opt, 0.02, 10)
			})
		}},
		{"negative_balanced_hybrid", func(m *perturb.Model) (*trace.Trace, error) {
			return mpi.Run(mpi.Options{Procs: procs, Perturb: m}, func(c *mpi.Comm) {
				core.NegativeBalancedHybrid(c, omp.Options{Threads: threads}, 0.02, 5)
			})
		}},
	}

	type cell struct {
		level, prog int
	}
	cells := make([]cell, 0, len(levels)*len(programs))
	for li := range levels {
		for pi := range programs {
			cells = append(cells, cell{level: li, prog: pi})
		}
	}
	var rows []PerturbedNegativeRow

	// Each cell's job computes the finished row — a pure, serializable
	// function of (level, program, shape, engine) — so the sweep can be
	// memoized through the process-wide result cache (SetResultCache): a
	// warm rerun replays the rows without executing a single world.  The
	// trace and report ride along unserialized for the profile sink; while
	// a sink is installed the key function returns "" (memoization off),
	// because a cache hit cannot re-emit them.
	type outcome struct {
		Row PerturbedNegativeRow `json:"row"`
		tr  *trace.Trace
		rep *analyzer.Report
	}
	sinkInstalled := profileSink != nil
	job := campaign.Memo(memoCache(),
		func(i int) string {
			if sinkInstalled {
				return ""
			}
			c := cells[i]
			key, err := perturbedCellKey(levels[c.level], programs[c.prog].name, procs, threads, perturbSeed)
			if err != nil {
				return ""
			}
			return key
		},
		func(i int) (outcome, error) {
			c := cells[i]
			lvl := levels[c.level]
			name := programs[c.prog].name
			m := perturb.NewModel(perturb.Level(perturbSeed, lvl))
			tr, err := programs[c.prog].run(m)
			if err != nil {
				return outcome{}, fmt.Errorf("%s L%d: %w", name, lvl, err)
			}
			rep := analyzer.Analyze(tr, analyzer.Options{})
			row := PerturbedNegativeRow{Level: lvl, Program: name, Clean: true}
			if top := rep.Top(); top != nil {
				row.TopProperty, row.TopSeverity = top.Property, top.Severity
				row.Clean = false
			}
			for _, prop := range rep.Properties() {
				if analyzer.IsInfo(prop) {
					continue
				}
				if wt := rep.Wait(prop); wt > row.MaxWait {
					row.MaxWait = wt
				}
			}
			return outcome{Row: row, tr: tr, rep: rep}, nil
		})
	err := campaign.Stream(len(cells),
		campaign.Options{},
		job,
		func(i int, oc outcome) error {
			c := cells[i]
			lvl := levels[c.level]
			name := programs[c.prog].name
			emitProfile(fmt.Sprintf("perturbed_negative_L%d_%s", lvl, name), oc.tr, oc.rep)
			row := oc.Row
			verdict := "(clean)"
			if !row.Clean {
				verdict = row.TopProperty
			}
			fmt.Fprintf(w, "L%-7d %-30s %-28s %9.2f%% %12.6f\n",
				lvl, name, verdict, row.TopSeverity*100, row.MaxWait)
			rows = append(rows, row)
			return nil
		})
	if err != nil {
		return nil, unwrapCampaign(err)
	}
	fmt.Fprintln(w, "\n(a finding at level > 0 is a real consequence of the injected disturbance;")
	fmt.Fprintln(w, " robust oracles must widen their noise floor with the level, not go blind)")
	return rows, nil
}
