// Package experiments regenerates every evaluation artifact of the paper
// (see DESIGN.md's per-experiment index): the single-property runs of
// Fig 3.2, the all-properties composite of Fig 3.3, the two-communicator
// program of Fig 3.4 with its EXPERT analysis of Fig 3.5, the
// positive/negative correctness sweeps the framework exists for, the
// Chapter-2 semantics-preservation and intrusiveness procedures, the
// Chapter-4 application runs, and the ablations of this reproduction's
// own design decisions.
//
// Each experiment writes a human-readable artifact to its writer and
// returns a machine-checkable summary, so the same code backs the
// cmd/atsbench binary, the root benchmark suite, and EXPERIMENTS.md.
package experiments

import (
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/analyzer"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/generator"
	"repro/internal/mpi"
	"repro/internal/omp"
	"repro/internal/trace"
	"repro/internal/vtime"
	"repro/internal/xctx"
)

// Fig32Result summarizes the single-property experiment of Figure 3.2.
type Fig32Result struct {
	// Sweep holds one row per parameter set (distribution × severity).
	Sweep []generator.SweepResult
	// InitOverheadSmall and InitOverheadLarge are the MPI init/finalize
	// severities of a tiny and a long-running test program — the paper
	// remarks that the overhead property dominates small test programs.
	InitOverheadSmall float64
	InitOverheadLarge float64
}

// Fig32 runs imbalance_at_mpi_barrier single-property programs with
// different distributions and severities — the two Vampir displays of the
// figure — and prints their timelines, the severity sweep, and the
// init-overhead observation.
func Fig32(w io.Writer, procs int) (Fig32Result, error) {
	var res Fig32Result
	spec, _ := core.Get("imbalance_at_mpi_barrier")

	// The figure's two runs: same property, different parameters.
	configs := []struct {
		label string
		ds    core.DistrSpec
		reps  int
	}{
		{"block2 low=0.01 high=0.06 r=5", core.DistrSpec{Name: "block2", Low: 0.01, High: 0.06}, 5},
		{"linear low=0.01 high=0.15 r=3", core.DistrSpec{Name: "linear", Low: 0.01, High: 0.15}, 3},
	}
	var points []generator.SweepPoint
	for _, cfg := range configs {
		a := spec.Defaults()
		a.Distr["distr"] = cfg.ds
		a.Int["r"] = cfg.reps
		points = append(points, generator.SweepPoint{
			Label: cfg.label, Args: a, Procs: procs, Threads: 1,
		})
	}
	// Severity scaling of the first configuration.
	for _, scale := range []float64{0.5, 2.0} {
		a := spec.Defaults()
		ds := configs[0].ds
		ds.High = ds.Low + (ds.High-ds.Low)*scale
		a.Distr["distr"] = ds
		a.Int["r"] = configs[0].reps
		points = append(points, generator.SweepPoint{
			Label: fmt.Sprintf("block2 severity x%g", scale), Args: a, Procs: procs, Threads: 1,
		})
	}

	rs, err := generator.Sweep(spec.Name, points)
	if err != nil {
		return res, err
	}
	res.Sweep = rs
	fmt.Fprintln(w, "== Fig 3.2: single-property programs (imbalance_at_mpi_barrier) ==")
	fmt.Fprint(w, generator.FormatSweep(spec.Name, rs))

	// Timelines of the two headline runs (the Vampir displays).
	profileNames := []string{"fig32_block2", "fig32_linear"}
	for i, cfg := range configs[:2] {
		a := spec.Defaults()
		a.Distr["distr"] = cfg.ds
		a.Int["r"] = cfg.reps
		tr, err := runSpec(spec, a, procs, 1)
		if err != nil {
			return res, err
		}
		fmt.Fprintf(w, "\ntimeline (%s):\n%s", cfg.label,
			trace.Timeline(tr, trace.TimelineOptions{Width: 96}))
		captureRun(profileNames[i], tr, analyzer.Options{})
	}

	// Init/finalize overhead: tiny vs long program.
	small := spec.Defaults()
	small.Int["r"] = 1
	ds := small.Distr["distr"]
	ds.Low, ds.High = 0.0005, 0.001
	small.Distr["distr"] = ds
	trSmall, err := runSpec(spec, small, procs, 1)
	if err != nil {
		return res, err
	}
	large := spec.Defaults()
	large.Int["r"] = 50
	trLarge, err := runSpec(spec, large, procs, 1)
	if err != nil {
		return res, err
	}
	res.InitOverheadSmall = analyzer.Analyze(trSmall, analyzer.Options{}).
		Severity(analyzer.PropInitFinalize)
	res.InitOverheadLarge = analyzer.Analyze(trLarge, analyzer.Options{}).
		Severity(analyzer.PropInitFinalize)
	fmt.Fprintf(w, "\nMPI init/finalize overhead severity: tiny program %.1f%%, long program %.1f%%\n",
		res.InitOverheadSmall*100, res.InitOverheadLarge*100)
	fmt.Fprintln(w, "(the paper notes this property is hard to avoid for small test programs)")
	return res, nil
}

// runSpec executes a property spec in a fresh environment.
func runSpec(spec *core.Spec, a core.Args, procs, threads int) (*trace.Trace, error) {
	team := omp.Options{Threads: threads}
	if spec.Paradigm == core.ParadigmOMP {
		return omp.Run(omp.RunOptions{Threads: threads}, func(ctx *xctx.Ctx, _ omp.Options) {
			spec.Run(core.Env{Ctx: ctx, OMP: team}, a)
		})
	}
	return mpi.Run(mpi.Options{Procs: procs}, func(c *mpi.Comm) {
		spec.Run(core.Env{Comm: c, Ctx: c.Ctx(), OMP: team}, a)
	})
}

// Fig33Result summarizes the composite experiment of Figure 3.3.
type Fig33Result struct {
	// Detected maps each analyzer property class exercised by the
	// composite to whether it was found significant.
	Detected map[string]bool
	// Findings is the ranked significant-finding count.
	Findings int
	// Events is the trace size.
	Events int
}

// Fig33 runs the all-MPI-properties composite program and checks how many
// property classes the analyzer detects — the figure's purpose is "to
// quickly determine how many different performance properties can be
// detected by a performance tool".
func Fig33(w io.Writer, procs int) (Fig33Result, error) {
	res := Fig33Result{Detected: make(map[string]bool)}
	tr, err := mpi.Run(mpi.Options{Procs: procs}, func(c *mpi.Comm) {
		core.CompositeAllMPI(c, core.DefaultComposite())
	})
	if err != nil {
		return res, err
	}
	res.Events = len(tr.Events)
	rep := analyzer.Analyze(tr, analyzer.Options{Threshold: 0.001})
	emitProfile("fig33_composite", tr, rep)
	for _, prop := range []string{
		analyzer.PropLateSender, analyzer.PropLateReceiver,
		analyzer.PropWaitAtBarrier, analyzer.PropLateBroadcast,
		analyzer.PropEarlyReduce, analyzer.PropWaitAtNxN,
	} {
		res.Detected[prop] = false
	}
	for _, r := range rep.Significant() {
		if _, ok := res.Detected[r.Property]; ok {
			res.Detected[r.Property] = true
		}
		res.Findings++
	}
	fmt.Fprintln(w, "== Fig 3.3: composite program calling all MPI property functions ==")
	fmt.Fprintf(w, "trace: %d events over %d ranks\n", res.Events, procs)
	fmt.Fprint(w, trace.Timeline(tr, trace.TimelineOptions{Width: 96}))
	fmt.Fprintln(w)
	fmt.Fprint(w, rep.RenderTree())
	fmt.Fprintf(w, "\nproperty classes detected: ")
	n := 0
	for _, prop := range []string{
		analyzer.PropLateSender, analyzer.PropLateReceiver,
		analyzer.PropWaitAtBarrier, analyzer.PropLateBroadcast,
		analyzer.PropEarlyReduce, analyzer.PropWaitAtNxN,
	} {
		if res.Detected[prop] {
			n++
		}
	}
	fmt.Fprintf(w, "%d of %d\n", n, len(res.Detected))
	return res, nil
}

// Fig35Result summarizes the two-communicator experiment (Figs 3.4+3.5).
type Fig35Result struct {
	// LateBcastOnUpperHalfOnly reports the localization check: waiting
	// only on upper-half non-root ranks.
	LateBcastOnUpperHalfOnly bool
	// RootWorldRank is where the broadcast root ran (paper: world rank 9
	// on 16 ranks = communicator-local root 1 in the upper half).
	RootWorldRank int
	// TopPathHasBcast reports whether the call-graph pane localizes the
	// finding at MPI_Bcast inside late_broadcast.
	TopPathHasBcast bool
}

// Fig34And35 runs the split-world program of Fig 3.4 and performs the
// EXPERT analysis of Fig 3.5, printing the timeline and the three panes.
func Fig34And35(w io.Writer, procs int) (Fig35Result, error) {
	var res Fig35Result
	tr, err := mpi.Run(mpi.Options{Procs: procs}, func(c *mpi.Comm) {
		core.TwoCommunicators(c, core.DefaultComposite())
	})
	if err != nil {
		return res, err
	}
	half := procs / 2
	res.RootWorldRank = half + core.UpperHalfBcastRoot
	rep := analyzer.Analyze(tr, analyzer.Options{Threshold: 0.001})
	emitProfile("fig35_two_communicators", tr, rep)

	fmt.Fprintln(w, "== Fig 3.4: two property sets in two communicators, concurrently ==")
	fmt.Fprint(w, trace.Timeline(tr, trace.TimelineOptions{Width: 96}))
	fmt.Fprintln(w, "\n== Fig 3.5: EXPERT-style analysis (three panes) ==")
	fmt.Fprint(w, rep.RenderTree())
	fmt.Fprintln(w)
	fmt.Fprint(w, rep.RenderCallPaths(analyzer.PropLateBroadcast))
	fmt.Fprintln(w)
	fmt.Fprint(w, rep.RenderLocations(analyzer.PropLateBroadcast))

	lb := rep.Get(analyzer.PropLateBroadcast)
	if lb != nil {
		res.LateBcastOnUpperHalfOnly = true
		for loc, wt := range lb.ByLocation {
			if wt > 0 && (loc.Rank < int32(half) || loc.Rank == int32(res.RootWorldRank)) {
				res.LateBcastOnUpperHalfOnly = false
			}
		}
		p := lb.TopPath()
		res.TopPathHasBcast = containsRegion(p, "late_broadcast") && containsRegion(p, "MPI_Bcast")
	}
	fmt.Fprintf(w, "\nlocalization: late_broadcast on upper half excluding root (world rank %d): %v; call path at late_broadcast/MPI_Bcast: %v\n",
		res.RootWorldRank, res.LateBcastOnUpperHalfOnly, res.TopPathHasBcast)
	return res, nil
}

func containsRegion(path, region string) bool {
	for len(path) > 0 {
		i := 0
		for i < len(path) && path[i] != '/' {
			i++
		}
		if path[:i] == region {
			return true
		}
		if i == len(path) {
			break
		}
		path = path[i+1:]
	}
	return false
}

// CorrectnessRow is one row of the positive-correctness table.
type CorrectnessRow struct {
	Property string
	Expected string
	Top      string
	Correct  bool
	Wait     float64
	Theory   float64
	RelErr   float64
}

// PositiveCorrectness runs every registered property with defaults and
// tabulates detection plus measured-vs-theoretical waiting time.  The
// property programs run concurrently on the campaign pool; rows, table
// lines and profile-sink emissions keep the registry order (the sink is
// only ever touched from the ordered delivery callback).
func PositiveCorrectness(w io.Writer, procs, threads int) ([]CorrectnessRow, error) {
	var rows []CorrectnessRow
	fmt.Fprintln(w, "== positive correctness: every property function, defaults ==")
	fmt.Fprintf(w, "%-42s %-28s %-10s %12s %12s %8s\n",
		"property function", "detected (top)", "correct", "wait(s)", "theory(s)", "err")
	specs := core.All()
	type outcome struct {
		tr  *trace.Trace
		rep *analyzer.Report
	}
	err := campaign.Stream(len(specs),
		campaign.Options{},
		func(i int) (outcome, error) {
			spec := specs[i]
			tr, err := runSpec(spec, spec.Defaults(), procs, threads)
			if err != nil {
				return outcome{}, fmt.Errorf("%s: %w", spec.Name, err)
			}
			return outcome{tr: tr, rep: analyzer.Analyze(tr, analyzer.Options{})}, nil
		},
		func(i int, oc outcome) error {
			spec := specs[i]
			a := spec.Defaults()
			rep := oc.rep
			emitProfile("positive_"+spec.Name, oc.tr, rep)
			want := analyzer.ExpectedDetection[spec.Name]
			row := CorrectnessRow{Property: spec.Name, Expected: want}
			if want == analyzer.PropMPITimeFraction {
				r := rep.Get(want)
				row.Top = want
				row.Correct = r != nil && r.Severity > 0.5
				row.Wait = rep.Wait(want)
				row.Theory = -1
			} else {
				if top := rep.Top(); top != nil {
					row.Top = top.Property
				}
				row.Wait = rep.Wait(want)
				row.Theory = spec.ExpectedWait(procs, threads, a)
				switch {
				case spec.Paradigm == core.ParadigmHybrid,
					spec.Name == "serialization_at_omp_critical":
					// Presence suffices (companion findings may dominate).
					row.Correct = rep.Severity(want) >= rep.Threshold
				default:
					row.Correct = row.Top == want
				}
				if row.Theory > 0 {
					row.RelErr = math.Abs(row.Wait-row.Theory) / row.Theory
				}
			}
			theory := "n/a"
			if row.Theory >= 0 {
				theory = fmt.Sprintf("%.6f", row.Theory)
			}
			fmt.Fprintf(w, "%-42s %-28s %-10v %12.6f %12s %7.1f%%\n",
				row.Property, row.Top, row.Correct, row.Wait, theory, row.RelErr*100)
			rows = append(rows, row)
			return nil
		})
	if err != nil {
		return nil, unwrapCampaign(err)
	}
	return rows, nil
}

// unwrapCampaign strips the campaign's job-index wrapper so experiment
// errors read exactly as their sequential versions did.
func unwrapCampaign(err error) error {
	var ce *campaign.Error
	if errors.As(err, &ce) {
		return ce.Err
	}
	return err
}

// NegativeResult summarizes the negative-correctness experiment.
type NegativeResult struct {
	Program     string
	TopProperty string // "" when clean
	TopSeverity float64
	AnalyzedOK  bool
}

// NegativeCorrectness runs the well-tuned programs concurrently; a correct
// tool stays silent on all of them.
func NegativeCorrectness(w io.Writer, procs, threads int) ([]NegativeResult, error) {
	fmt.Fprintln(w, "== negative correctness: well-tuned programs ==")
	programs := []struct {
		name string
		run  func() (*trace.Trace, error)
	}{
		{"negative_balanced_mpi", func() (*trace.Trace, error) {
			return mpi.Run(mpi.Options{Procs: procs}, func(c *mpi.Comm) {
				core.NegativeBalancedMPI(c, 0.02, 10)
			})
		}},
		{"negative_balanced_omp", func() (*trace.Trace, error) {
			return omp.Run(omp.RunOptions{Threads: threads}, func(ctx *xctx.Ctx, opt omp.Options) {
				core.NegativeBalancedOMP(ctx, opt, 0.02, 10)
			})
		}},
		{"negative_balanced_hybrid", func() (*trace.Trace, error) {
			return mpi.Run(mpi.Options{Procs: procs}, func(c *mpi.Comm) {
				core.NegativeBalancedHybrid(c, omp.Options{Threads: threads}, 0.02, 5)
			})
		}},
	}
	var out []NegativeResult
	type outcome struct {
		tr  *trace.Trace
		rep *analyzer.Report
	}
	err := campaign.Stream(len(programs),
		campaign.Options{},
		func(i int) (outcome, error) {
			tr, err := programs[i].run()
			if err != nil {
				return outcome{}, err
			}
			return outcome{tr: tr, rep: analyzer.Analyze(tr, analyzer.Options{})}, nil
		},
		func(i int, oc outcome) error {
			name := programs[i].name
			emitProfile(name, oc.tr, oc.rep)
			res := NegativeResult{Program: name, AnalyzedOK: true}
			if top := oc.rep.Top(); top != nil {
				res.TopProperty, res.TopSeverity = top.Property, top.Severity
				res.AnalyzedOK = false
			}
			verdict := "clean"
			if !res.AnalyzedOK {
				verdict = fmt.Sprintf("SPURIOUS %s %.2f%%", res.TopProperty, res.TopSeverity*100)
			}
			fmt.Fprintf(w, "%-30s %s\n", name, verdict)
			out = append(out, res)
			return nil
		})
	if err != nil {
		return nil, unwrapCampaign(err)
	}
	return out, nil
}

// WorkAccuracyResult summarizes the do_work accuracy experiment (§3.1.1).
type WorkAccuracyResult struct {
	VirtualExact bool
	// RealMeanErr is the mean relative timing error of real-mode work.
	RealMeanErr float64
}

// WorkAccuracy measures how precisely do_work realizes requested
// durations in both clock modes.
func WorkAccuracy(w io.Writer, runReal bool) (WorkAccuracyResult, error) {
	var res WorkAccuracyResult
	fmt.Fprintln(w, "== work specification accuracy (do_work) ==")

	// Virtual: exact by construction; verify through a run.
	var virtErr float64
	_, err := mpi.Run(mpi.Options{Procs: 1, Untraced: true}, func(c *mpi.Comm) {
		for _, d := range []float64{0.001, 0.05, 1.25} {
			t0 := c.WTime()
			c.Work(d)
			virtErr += math.Abs((c.WTime() - t0) - d)
		}
	})
	if err != nil {
		return res, err
	}
	res.VirtualExact = virtErr < 1e-9
	fmt.Fprintf(w, "virtual mode: cumulative error %.2e (exact: %v)\n", virtErr, res.VirtualExact)

	if !runReal {
		fmt.Fprintln(w, "real mode: skipped")
		return res, nil
	}
	var totalRel float64
	var n int
	_, err = mpi.Run(mpi.Options{Procs: 1, Mode: vtime.Real, Untraced: true}, func(c *mpi.Comm) {
		for _, d := range []float64{0.005, 0.02, 0.05} {
			start := time.Now()
			c.Work(d)
			got := time.Since(start).Seconds()
			totalRel += math.Abs(got-d) / d
			n++
		}
	})
	if err != nil {
		return res, err
	}
	res.RealMeanErr = totalRel / float64(n)
	fmt.Fprintf(w, "real mode: mean relative error %.1f%% (paper: \"approximated up to ... milliseconds\")\n",
		res.RealMeanErr*100)
	return res, nil
}
