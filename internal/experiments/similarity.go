package experiments

import (
	"fmt"
	"io"

	"repro/internal/similarity"
)

// SimilarityPoint is one corpus size of the similarity-recall sweep.
type SimilarityPoint struct {
	// Profiles is the corpus size the index was built over.
	Profiles int
	// Queries is how many stored profiles were replayed as queries.
	Queries int
	// K is the result depth compared against brute force.
	K int
	// Recall is the mean fraction of the exact top-K the LSH query
	// returned.
	Recall float64
	// Probed is the mean fraction of the corpus the LSH query actually
	// scored — the sublinearity measure (1.0 would be brute force).
	Probed float64
}

// SimilarityResult summarizes the recall-vs-brute-force sweep of the
// cross-run profile similarity index.
type SimilarityResult struct {
	Points []SimilarityPoint
}

// simCorpusSeed fixes the synthetic corpus, so the table is identical
// on every run and machine.
const simCorpusSeed = 7

// Similarity measures the random-hyperplane LSH index (the engine
// behind `atsregress similar` and GET /v1/similar) against brute-force
// cosine scan over synthetic profile corpora of the given sizes: for
// each size it indexes the corpus, replays a sample of stored profiles
// as queries, and reports top-K recall and the fraction of the corpus
// probed.  Sublinearity is the point: recall should hold ≥0.9 while the
// probed fraction falls as the corpus grows.
func Similarity(w io.Writer, sizes []int) (SimilarityResult, error) {
	const k = 10
	var res SimilarityResult
	fmt.Fprintln(w, "== cross-run profile similarity: LSH recall vs brute force ==")
	fmt.Fprintf(w, "index: %d-dim embedding, %d bits x %d tables, exact re-rank of candidates\n",
		similarity.Dims, similarity.DefaultParams.Bits, similarity.DefaultParams.Tables)
	fmt.Fprintf(w, "%10s %8s %4s %8s %10s\n", "profiles", "queries", "k", "recall", "probed")
	for _, n := range sizes {
		ix := similarity.NewIndex(similarity.Params{})
		vecs := make([][]float64, n)
		for i := 0; i < n; i++ {
			vecs[i] = similarity.Embed(similarity.SyntheticProfile(simCorpusSeed, i))
			if err := ix.Add(fmt.Sprintf("%064x", i), vecs[i]); err != nil {
				return res, err
			}
		}
		queries := n
		if queries > 100 {
			queries = 100
		}
		var recallSum, probedSum float64
		for q := 0; q < queries; q++ {
			vec := vecs[q*n/queries]
			approx, probed, err := ix.Query(vec, k)
			if err != nil {
				return res, err
			}
			exact, err := ix.Scan(vec, k)
			if err != nil {
				return res, err
			}
			got := make(map[string]bool, len(approx))
			for _, m := range approx {
				got[m.Hash] = true
			}
			hits := 0
			for _, m := range exact {
				if got[m.Hash] {
					hits++
				}
			}
			recallSum += float64(hits) / float64(len(exact))
			probedSum += float64(probed) / float64(n)
		}
		pt := SimilarityPoint{
			Profiles: n,
			Queries:  queries,
			K:        k,
			Recall:   recallSum / float64(queries),
			Probed:   probedSum / float64(queries),
		}
		res.Points = append(res.Points, pt)
		fmt.Fprintf(w, "%10d %8d %4d %8.3f %9.2f%%\n",
			pt.Profiles, pt.Queries, pt.K, pt.Recall, pt.Probed*100)
	}
	return res, nil
}
