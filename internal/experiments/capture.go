package experiments

import (
	"repro/internal/analyzer"
	"repro/internal/trace"
)

// ProfileFunc receives every (experiment, trace, report) triple produced
// while experiments run.  Collectors typically convert the pair into a
// profile.Profile and persist it (cmd/atsbench -profiles does exactly
// that), turning each artifact of EXPERIMENTS.md into a
// regression-checkable baseline.
type ProfileFunc func(name string, tr *trace.Trace, rep *analyzer.Report)

// profileSink is the installed collector; nil disables collection.
var profileSink ProfileFunc

// SetProfileSink installs (or, with nil, removes) the process-wide
// profile collector.  Experiments are driven by a single caller (atsbench,
// tests), and even when their runs execute concurrently on the campaign
// pool, emission happens only from the pool's ordered delivery callback —
// so the sink stays a plain package variable, is never called
// concurrently, and sees profiles in the same order as a sequential run.
// It is not safe to mutate while experiments are running.
func SetProfileSink(f ProfileFunc) { profileSink = f }

// emitProfile hands a finished run to the collector, if any.
func emitProfile(name string, tr *trace.Trace, rep *analyzer.Report) {
	if profileSink != nil && tr != nil && rep != nil {
		profileSink(name, tr, rep)
	}
}

// captureRun analyzes tr and hands the pair to the collector.  Without an
// installed sink it is a no-op, so experiments that do not otherwise need
// an analysis pay nothing.
func captureRun(name string, tr *trace.Trace, opt analyzer.Options) {
	if profileSink == nil || tr == nil {
		return
	}
	emitProfile(name, tr, analyzer.Analyze(tr, opt))
}
