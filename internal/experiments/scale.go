package experiments

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/analyzer"
	"repro/internal/mpi"
	"repro/internal/profile"
	"repro/internal/trace"
)

// ScaleRow is one (rank count, pipeline mode) measurement of the scale
// experiment.
type ScaleRow struct {
	Procs  int
	Mode   string // "streamed" or "materialized"
	Events int
	// PeakHeap is the sampled peak of runtime HeapAlloc over the whole
	// run+analyze phase, in bytes.
	PeakHeap uint64
	// HostMS is host wall-clock time for the phase in milliseconds.
	HostMS float64
	// Hash is the canonical profile content hash; the experiment fails if
	// the two modes of the same rank count ever disagree.
	Hash string
}

// scaleRounds and scaleInnerRegions size the scale program: each rank
// runs scaleRounds barrier-resynced phases of scaleInnerRegions traced
// compute segments, so the event count per rank (~scaleRounds ×
// (2·scaleInnerRegions + 3) + 2) is fixed and the total event volume
// grows linearly with the rank count.
const (
	scaleRounds       = 20
	scaleInnerRegions = 8
)

// scaleBody is the program of the scale experiment: the Fig 3.2
// imbalance-at-barrier workload, unrolled into many small traced compute
// segments so the trace is dominated by enter/exit events — the kind a
// materialized pipeline must hold in full and a streamed one can discard
// as regions close.
func scaleBody(c *mpi.Comm) {
	skew := 0.0002 * (1 + float64(c.Rank())/float64(c.Size()))
	c.Begin("scale_phase")
	for r := 0; r < scaleRounds; r++ {
		for k := 0; k < scaleInnerRegions; k++ {
			c.Begin("compute")
			c.Work(skew)
			c.End()
		}
		c.Barrier()
	}
	c.End()
}

// measurePeak runs f while sampling the heap high-water mark.  The GC runs
// twice up front so a prior phase's garbage (and sync.Pool victim caches)
// cannot inflate this phase's peak.
func measurePeak(f func() error) (peak uint64, elapsed time.Duration, err error) {
	runtime.GC()
	runtime.GC()
	var peakV atomic.Uint64
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		for {
			cur := peakV.Load()
			if ms.HeapAlloc <= cur || peakV.CompareAndSwap(cur, ms.HeapAlloc) {
				return
			}
		}
	}
	sample()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(2 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				sample()
			}
		}
	}()
	start := time.Now()
	err = f()
	elapsed = time.Since(start)
	close(stop)
	<-done
	sample()
	return peakV.Load(), elapsed, err
}

// runScaleStreamed executes the scale program through the chunk-spool
// streaming pipeline and returns (events, profile hash).
func runScaleStreamed(procs int, body func(c *mpi.Comm)) (int, string, error) {
	f, err := os.CreateTemp("", "scale-spool-*.atsc")
	if err != nil {
		return 0, "", err
	}
	spool := f.Name()
	f.Close()
	defer os.Remove(spool)

	w, err := trace.NewChunkWriter(spool, trace.DefaultSpillEvents)
	if err != nil {
		return 0, "", err
	}
	if _, err := mpi.Run(mpi.Options{Procs: procs, Sink: w}, body); err != nil {
		w.Abort()
		return 0, "", err
	}
	if err := w.Close(); err != nil {
		return 0, "", err
	}
	r, err := trace.OpenChunkFile(spool)
	if err != nil {
		return 0, "", err
	}
	st, err := trace.NewStream(r)
	if err != nil {
		r.Close()
		return 0, "", err
	}
	defer st.Close()
	rep, err := analyzer.AnalyzeStream(st, analyzer.Options{})
	if err != nil {
		return 0, "", err
	}
	prof, err := profile.FromAnalysis("scale", profile.TraceInfoOfStream(st), rep,
		profile.RunInfo{Procs: procs, Threads: 1})
	if err != nil {
		return 0, "", err
	}
	hash, err := prof.Hash()
	return st.Events(), hash, err
}

// runScaleMaterialized executes the same program through the classic
// merge-then-analyze pipeline.
func runScaleMaterialized(procs int, body func(c *mpi.Comm)) (int, string, error) {
	tr, err := mpi.Run(mpi.Options{Procs: procs}, body)
	if err != nil {
		return 0, "", err
	}
	rep := analyzer.Analyze(tr, analyzer.Options{})
	prof, err := profile.FromRun("scale", tr, rep, profile.RunInfo{Procs: procs, Threads: 1})
	if err != nil {
		return 0, "", err
	}
	hash, err := prof.Hash()
	return len(tr.Events), hash, err
}

// scaleBigRounds/scaleBigInnerRegions size the big-rank scale program.
// The per-rank event count is deliberately light (~rounds×(2·inner+3)+2 ≈
// 68): at 10⁴–10⁵ ranks the interesting axis is rank count, not per-rank
// event volume, and the light body keeps a 65536-rank run inside a CI
// budget while still exercising every scheduler path (compute, barriers,
// a neighbor exchange).
const (
	scaleBigRounds       = 6
	scaleBigInnerRegions = 4
)

// scaleBigBody is the composite program of the big-rank scale experiment:
// skewed compute segments, barrier resyncs, and a ring Sendrecv so the
// event scheduler's p2p matching is on the measured path too.
func scaleBigBody(c *mpi.Comm) {
	skew := 0.0002 * (1 + float64(c.Rank())/float64(c.Size()))
	next := (c.Rank() + 1) % c.Size()
	prev := (c.Rank() - 1 + c.Size()) % c.Size()
	buf := mpi.AllocBuf(mpi.TypeDouble, 4)
	defer mpi.FreeBuf(buf)
	c.Begin("scale_phase")
	for r := 0; r < scaleBigRounds; r++ {
		for k := 0; k < scaleBigInnerRegions; k++ {
			c.Begin("compute")
			c.Work(skew)
			c.End()
		}
		c.Sendrecv(buf, next, 1, buf, prev, 1)
		c.Barrier()
	}
	c.End()
}

// ScaleBigRow is one rank-count measurement of the big-rank experiment.
type ScaleBigRow struct {
	Procs    int
	Events   int
	PeakHeap uint64
	HostMS   float64
	// EventsPerSec is trace-event throughput over the whole
	// run+stream+analyze phase.
	EventsPerSec float64
	Hash         string
}

// ScaleStreamed runs the big-rank scale experiment: the composite program
// at 10³–10⁵ ranks through the event engine and the streaming pipeline
// (the materialized pipeline is deliberately absent — holding a 65536-rank
// trace in memory is the failure mode this experiment demonstrates the
// absence of).  Memory must stay O(ranks + pending events): the peak-heap
// column is the evidence, and the committed bench baseline
// (testdata/bench/) tracks it release to release.
func ScaleStreamed(w io.Writer, ranks []int) ([]ScaleBigRow, error) {
	fmt.Fprintln(w, "== scalebig: event-engine composite at 10^3..10^5 ranks (streamed) ==")
	fmt.Fprintf(w, "(%d rounds x %d compute segments + ring exchange per rank; peak = sampled HeapAlloc high-water mark)\n",
		scaleBigRounds, scaleBigInnerRegions)
	fmt.Fprintf(w, "%7s %10s %10s %10s %12s  %s\n",
		"procs", "events", "peak-MiB", "host-ms", "events/sec", "hash")
	var rows []ScaleBigRow
	for _, p := range ranks {
		var events int
		var hash string
		peak, dur, err := measurePeak(func() (err error) {
			events, hash, err = runScaleStreamed(p, scaleBigBody)
			return err
		})
		if err != nil {
			return rows, fmt.Errorf("scalebig: P=%d: %w", p, err)
		}
		eps := float64(events) / dur.Seconds()
		rows = append(rows, ScaleBigRow{
			Procs: p, Events: events, PeakHeap: peak,
			HostMS: float64(dur.Microseconds()) / 1e3, EventsPerSec: eps, Hash: hash,
		})
		fmt.Fprintf(w, "%7d %10d %10.1f %10.0f %12.0f  %s\n",
			p, events, float64(peak)/(1<<20), float64(dur.Microseconds())/1e3, eps, hash[:12])
	}
	return rows, nil
}

// Scale compares the streamed and materialized analysis pipelines at
// growing rank counts: same program, same report (the profile hashes must
// match — the experiment fails otherwise), very different peak memory.
// The streamed phase runs first within each rank count so buffer-pool
// reuse from a materialized run can never subsidize its numbers.
func Scale(w io.Writer, ranks []int) ([]ScaleRow, error) {
	body := scaleBody
	fmt.Fprintln(w, "== scale: streamed vs materialized run+analysis ==")
	fmt.Fprintf(w, "(imbalance at barrier, %d rounds x %d compute segments per rank; peak = sampled HeapAlloc high-water mark)\n",
		scaleRounds, scaleInnerRegions)
	fmt.Fprintf(w, "%6s  %-12s %10s %10s %9s  %-12s %s\n",
		"procs", "mode", "events", "peak-MiB", "host-ms", "hash", "streamed/materialized peak")
	var rows []ScaleRow
	for _, p := range ranks {
		var sEvents, mEvents int
		var sHash, mHash string
		sPeak, sDur, err := measurePeak(func() (err error) {
			sEvents, sHash, err = runScaleStreamed(p, body)
			return err
		})
		if err != nil {
			return rows, fmt.Errorf("scale: streamed P=%d: %w", p, err)
		}
		mPeak, mDur, err := measurePeak(func() (err error) {
			mEvents, mHash, err = runScaleMaterialized(p, body)
			return err
		})
		if err != nil {
			return rows, fmt.Errorf("scale: materialized P=%d: %w", p, err)
		}
		if sHash != mHash {
			return rows, fmt.Errorf("scale: P=%d: streamed profile hash %s != materialized %s", p, sHash, mHash)
		}
		if sEvents != mEvents {
			return rows, fmt.Errorf("scale: P=%d: streamed %d events != materialized %d", p, sEvents, mEvents)
		}
		ratio := float64(sPeak) / float64(mPeak)
		rows = append(rows,
			ScaleRow{Procs: p, Mode: "streamed", Events: sEvents, PeakHeap: sPeak,
				HostMS: float64(sDur.Microseconds()) / 1e3, Hash: sHash},
			ScaleRow{Procs: p, Mode: "materialized", Events: mEvents, PeakHeap: mPeak,
				HostMS: float64(mDur.Microseconds()) / 1e3, Hash: mHash})
		fmt.Fprintf(w, "%6d  %-12s %10d %10.1f %9.0f  %-12s\n",
			p, "streamed", sEvents, float64(sPeak)/(1<<20),
			float64(sDur.Microseconds())/1e3, sHash[:12])
		fmt.Fprintf(w, "%6d  %-12s %10d %10.1f %9.0f  %-12s %.1f%%\n",
			p, "materialized", mEvents, float64(mPeak)/(1<<20),
			float64(mDur.Microseconds())/1e3, mHash[:12], ratio*100)
	}
	fmt.Fprintln(w, "(identical hashes per rank count: the streamed pipeline is byte-equivalent)")
	return rows, nil
}
