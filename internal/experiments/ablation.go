package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/analyzer"
	"repro/internal/apps"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/microbench"
	"repro/internal/mpi"
	"repro/internal/trace"
	"repro/internal/validate"
	"repro/internal/vtime"
)

// Ch2Result summarizes the Chapter-2 experiments.
type Ch2Result struct {
	SemanticsPreserved bool
	Checks             int
	Intrusiveness      microbench.IntrusivenessResult
}

// Ch2 executes the validation-suite procedure (with/without
// instrumentation) and the intrusiveness measurement.
func Ch2(w io.Writer, procs int) (Ch2Result, error) {
	var res Ch2Result
	fmt.Fprintln(w, "== Ch.2: semantics preservation (validation suite ×2) ==")
	plain := validate.RunSuite(false)
	instr := validate.RunSuite(true)
	res.Checks = len(plain)
	if err := validate.Compare(plain, instr); err != nil {
		fmt.Fprintf(w, "FAILED: %v\n", err)
	} else {
		res.SemanticsPreserved = true
		fmt.Fprintf(w, "OK: %d checks identical with and without instrumentation\n", res.Checks)
	}

	fmt.Fprintln(w, "\n== Ch.2: instrumentation overhead (intrusiveness) ==")
	intr, err := microbench.Intrusiveness(procs, 100)
	if err != nil {
		return res, err
	}
	res.Intrusiveness = intr
	fmt.Fprintf(w, "uninstrumented %v, instrumented %v (%d events): overhead %.1f%%\n",
		intr.PlainWall, intr.TracedWall, intr.Events, intr.Overhead*100)
	return res, nil
}

// Ch4Row is one row of the application experiment.
type Ch4Row struct {
	App       string
	Inject    apps.Injection
	Top       string
	Severity  float64
	AsDesired bool // clean when tuned / detected when injected
}

// Ch4Applications runs the mini-applications tuned and with injected
// pathologies, and tabulates the analysis outcomes.
func Ch4Applications(w io.Writer, procs int) ([]Ch4Row, error) {
	fmt.Fprintln(w, "== Ch.4: applications (tuned vs injected pathologies) ==")
	fmt.Fprintf(w, "%-14s %-11s %-28s %9s %s\n", "application", "injection", "top finding", "severity", "as-desired")
	var rows []Ch4Row
	// masterWaitShare returns the fraction of late-sender waiting that
	// sits on rank 0 (the farm's master).
	masterWaitShare := func(rep *analyzer.Report) float64 {
		r := rep.Get(analyzer.PropLateSender)
		if r == nil {
			return 0
		}
		var total, master float64
		for loc, w := range r.ByLocation {
			total += w
			if loc.Rank == 0 {
				master += w
			}
		}
		if total == 0 {
			return 0
		}
		return master / total
	}
	type runCase struct {
		app    string
		inject apps.Injection
		run    func(c *mpi.Comm, inject apps.Injection)
		// verify encodes the application's documented performance
		// behaviour for this configuration.
		verify func(rep *analyzer.Report, row Ch4Row) bool
	}
	clean := func(rep *analyzer.Report, row Ch4Row) bool {
		// Tuned bulk-synchronous codes stay below noise; pipelines keep
		// a small fill-phase wait.
		return row.Severity < 0.05
	}
	detected := func(rep *analyzer.Report, row Ch4Row) bool {
		return row.Top != "" && row.Severity >= rep.Threshold
	}
	cases := []runCase{
		{"jacobi", apps.InjectNone, func(c *mpi.Comm, in apps.Injection) {
			apps.Jacobi(c, apps.JacobiConfig{Rows: 64, Iters: 10, CellCost: 5e-6, Inject: in})
		}, clean},
		{"jacobi", apps.InjectImbalance, func(c *mpi.Comm, in apps.Injection) {
			apps.Jacobi(c, apps.JacobiConfig{Rows: 64, Iters: 10, CellCost: 5e-6, Inject: in})
		}, detected},
		{"masterworker", apps.InjectNone, func(c *mpi.Comm, in apps.Injection) {
			apps.MasterWorker(c, apps.MasterWorkerConfig{Tasks: 24, TaskCost: 2e-3, Inject: in})
		}, func(rep *analyzer.Report, row Ch4Row) bool {
			// Documented behaviour: a dedicated master idles while the
			// workers compute, so the tuned farm shows late_sender
			// concentrated on rank 0 — workers themselves stay busy.
			return row.Top == analyzer.PropLateSender && masterWaitShare(rep) > 0.6
		}},
		{"masterworker", apps.InjectImbalance, func(c *mpi.Comm, in apps.Injection) {
			apps.MasterWorker(c, apps.MasterWorkerConfig{Tasks: 24, TaskCost: 2e-3,
				Inject: in, SkewFactor: 40})
		}, func(rep *analyzer.Report, row Ch4Row) bool {
			// The giant task drains the farm early: the other workers
			// receive their stop messages and idle in the final
			// verification broadcast until the master — itself blocked
			// on the giant task's result — finally arrives.  The
			// signature is a significant late_broadcast on top of the
			// master's (late_sender) idling.
			return rep.Severity(analyzer.PropLateBroadcast) >= rep.Threshold &&
				rep.Severity(analyzer.PropLateSender) >= rep.Threshold &&
				detected(rep, row)
		}},
		{"pipeline", apps.InjectNone, func(c *mpi.Comm, in apps.Injection) {
			apps.Pipeline(c, apps.PipelineConfig{Blocks: 16, StageCost: 2e-3, Inject: in})
		}, clean},
		{"pipeline", apps.InjectSlowRank, func(c *mpi.Comm, in apps.Injection) {
			apps.Pipeline(c, apps.PipelineConfig{Blocks: 16, StageCost: 2e-3,
				Inject: in, SkewFactor: 5})
		}, detected},
		{"hybrid_heat", apps.InjectNone, func(c *mpi.Comm, in apps.Injection) {
			apps.HybridHeat(c, apps.HybridHeatConfig{Rows: 32, Iters: 5,
				CellCost: 1e-4, Inject: in})
		}, clean},
		{"hybrid_heat", apps.InjectImbalance, func(c *mpi.Comm, in apps.Injection) {
			apps.HybridHeat(c, apps.HybridHeatConfig{Rows: 32, Iters: 5,
				CellCost: 1e-4, Inject: in})
		}, detected},
	}
	// The application runs are independent worlds: execute them on the
	// campaign pool, with analysis folded into each job and the ordered
	// sink owning the profile emission and table printing.
	type outcome struct {
		tr  *trace.Trace
		rep *analyzer.Report
	}
	err := campaign.Stream(len(cases),
		campaign.Options{},
		func(i int) (outcome, error) {
			tc := cases[i]
			tr, err := mpi.Run(mpi.Options{Procs: procs}, func(c *mpi.Comm) {
				tc.run(c, tc.inject)
			})
			if err != nil {
				return outcome{}, fmt.Errorf("%s/%v: %w", tc.app, tc.inject, err)
			}
			return outcome{tr: tr, rep: analyzer.Analyze(tr, analyzer.Options{})}, nil
		},
		func(i int, oc outcome) error {
			tc := cases[i]
			emitProfile(fmt.Sprintf("ch4_%s_%s", tc.app, tc.inject), oc.tr, oc.rep)
			row := Ch4Row{App: tc.app, Inject: tc.inject}
			if top := oc.rep.Top(); top != nil {
				row.Top, row.Severity = top.Property, top.Severity
			}
			row.AsDesired = tc.verify(oc.rep, row)
			top := row.Top
			if top == "" {
				top = "(clean)"
			}
			fmt.Fprintf(w, "%-14s %-11s %-28s %8.2f%% %v\n",
				row.App, row.Inject, top, row.Severity*100, row.AsDesired)
			rows = append(rows, row)
			return nil
		})
	if err != nil {
		return nil, unwrapCampaign(err)
	}
	return rows, nil
}

// AblationResult summarizes the design-decision ablations of DESIGN.md §5.
type AblationResult struct {
	// VirtualRelErr / RealRelErr are the late-sender measurement errors
	// of the two clock modes against the configured severity.
	VirtualRelErr float64
	RealRelErr    float64
	// EagerLateReceiverWait / RendezvousLateReceiverWait show that the
	// late-receiver pathology exists only under the rendezvous protocol.
	EagerLateReceiverWait      float64
	RendezvousLateReceiverWait float64
}

// Ablations runs the reproduction's own design ablations: virtual vs real
// clocks, and eager vs rendezvous point-to-point protocols.
func Ablations(w io.Writer, runReal bool) (AblationResult, error) {
	var res AblationResult
	fmt.Fprintln(w, "== ablation: virtual vs real clock (late_sender, extrawork=0.02, r=5, 4 ranks) ==")
	const extra, reps, procs = 0.02, 5, 4
	expect := float64(procs/2) * extra * reps

	measure := func(mode vtime.Mode) (float64, error) {
		tr, err := mpi.Run(mpi.Options{Procs: procs, Mode: mode}, func(c *mpi.Comm) {
			core.LateSender(c, 0.01, extra, reps)
		})
		if err != nil {
			return 0, err
		}
		return analyzer.Analyze(tr, analyzer.Options{}).Wait(analyzer.PropLateSender), nil
	}
	v, err := measure(vtime.Virtual)
	if err != nil {
		return res, err
	}
	res.VirtualRelErr = math.Abs(v-expect) / expect
	fmt.Fprintf(w, "virtual: wait %.6fs vs theory %.6fs (err %.2f%%)\n", v, expect, res.VirtualRelErr*100)
	if runReal {
		r, err := measure(vtime.Real)
		if err != nil {
			return res, err
		}
		res.RealRelErr = math.Abs(r-expect) / expect
		fmt.Fprintf(w, "real:    wait %.6fs vs theory %.6fs (err %.2f%%)\n", r, expect, res.RealRelErr*100)
	} else {
		fmt.Fprintln(w, "real:    skipped")
	}

	fmt.Fprintln(w, "\n== ablation: eager vs rendezvous protocol (late receiver) ==")
	lateRecvWait := func(ssend bool) (float64, error) {
		tr, err := mpi.Run(mpi.Options{Procs: 2}, func(c *mpi.Comm) {
			buf := c.BaseBuf()
			if c.Rank() == 0 {
				if ssend {
					c.Ssend(buf, 1, 0)
				} else {
					c.Send(buf, 1, 0)
				}
			} else {
				c.Work(0.1)
				c.Recv(buf, 0, 0)
			}
		})
		if err != nil {
			return 0, err
		}
		return analyzer.Analyze(tr, analyzer.Options{}).Wait(analyzer.PropLateReceiver), nil
	}
	if res.EagerLateReceiverWait, err = lateRecvWait(false); err != nil {
		return res, err
	}
	if res.RendezvousLateReceiverWait, err = lateRecvWait(true); err != nil {
		return res, err
	}
	fmt.Fprintf(w, "eager send:      late-receiver wait %.6fs (pathology absent)\n", res.EagerLateReceiverWait)
	fmt.Fprintf(w, "synchronous send: late-receiver wait %.6fs (pathology present)\n", res.RendezvousLateReceiverWait)
	return res, nil
}
