package experiments

import (
	"bytes"
	"io"
	"testing"
)

func TestPerturbedNegativeCorrectnessTable(t *testing.T) {
	rows, err := PerturbedNegativeCorrectness(io.Discard, 4, 2, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 2 levels x 3 programs", len(rows))
	}
	var perturbedWait float64
	for _, r := range rows {
		if r.Level == 0 && !r.Clean {
			t.Errorf("level 0 %s: spurious %s (%.2f%%) — level 0 must match the unperturbed table",
				r.Program, r.TopProperty, r.TopSeverity*100)
		}
		if r.Level == 2 && r.MaxWait > perturbedWait {
			perturbedWait = r.MaxWait
		}
	}
	if perturbedWait == 0 {
		t.Error("level-2 perturbation produced no measurable wait anywhere")
	}
}

// The whole table — runs, analysis, formatting — is a pure function of
// (levels, shape): two invocations emit identical bytes.
func TestPerturbedNegativeCorrectnessDeterministic(t *testing.T) {
	var b1, b2 bytes.Buffer
	if _, err := PerturbedNegativeCorrectness(&b1, 4, 2, []int{3}); err != nil {
		t.Fatal(err)
	}
	if _, err := PerturbedNegativeCorrectness(&b2, 4, 2, []int{3}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("perturbed table not reproducible:\n%s\n----\n%s", b1.String(), b2.String())
	}
}
