package experiments

import (
	"io"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/core"
	"repro/internal/trace"
)

// TestProfileSinkReceivesOnePerRun installs a sink and asserts the
// negative-correctness experiment emits exactly one (name, trace, report)
// triple per analyzed run, in order.
func TestProfileSinkReceivesOnePerRun(t *testing.T) {
	var got []string
	SetProfileSink(func(name string, tr *trace.Trace, rep *analyzer.Report) {
		if tr == nil || rep == nil {
			t.Errorf("sink received nil trace/report for %q", name)
		}
		if len(tr.Events) == 0 {
			t.Errorf("sink received empty trace for %q", name)
		}
		got = append(got, name)
	})
	defer SetProfileSink(nil)

	results, err := NegativeCorrectness(io.Discard, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"negative_balanced_mpi", "negative_balanced_omp", "negative_balanced_hybrid"}
	if len(results) != len(want) {
		t.Fatalf("experiment produced %d results, want %d", len(results), len(want))
	}
	if len(got) != len(want) {
		t.Fatalf("sink received %d profiles, want %d: %v", len(got), len(want), got)
	}
	for i, name := range want {
		if got[i] != name {
			t.Errorf("profile %d: got %q, want %q", i, got[i], name)
		}
	}
}

// TestProfileSinkPositiveCorrectness asserts the per-property experiment
// emits one profile per registered property function.
func TestProfileSinkPositiveCorrectness(t *testing.T) {
	count := 0
	SetProfileSink(func(name string, tr *trace.Trace, rep *analyzer.Report) {
		count++
	})
	defer SetProfileSink(nil)

	rows, err := PositiveCorrectness(io.Discard, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(core.All()); len(rows) != want || count != want {
		t.Fatalf("rows %d, profiles %d, want %d each", len(rows), count, want)
	}
}

// TestNilSinkPaths exercises the disabled-collector fast paths directly:
// with no sink installed (and with nil inputs) nothing may run or panic.
func TestNilSinkPaths(t *testing.T) {
	SetProfileSink(nil)
	// No sink: both helpers are no-ops even with real inputs absent.
	captureRun("x", nil, analyzer.Options{})
	emitProfile("x", nil, nil)

	fired := false
	SetProfileSink(func(string, *trace.Trace, *analyzer.Report) { fired = true })
	defer SetProfileSink(nil)
	// Nil trace/report must be filtered before reaching the sink.
	captureRun("x", nil, analyzer.Options{})
	emitProfile("x", nil, nil)
	if fired {
		t.Fatal("sink fired for nil trace/report")
	}
}
