package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/campaign"
)

// TestScaleSmall runs the scale experiment at toy rank counts; the
// streamed-vs-materialized hash and event-count assertions live inside
// Scale itself, so a nil error is the equivalence check.
func TestScaleSmall(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Scale(&buf, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4 (2 rank counts x 2 modes)", len(rows))
	}
	for i := 0; i < len(rows); i += 2 {
		s, m := rows[i], rows[i+1]
		if s.Mode != "streamed" || m.Mode != "materialized" {
			t.Fatalf("row pair %d: modes %q/%q", i, s.Mode, m.Mode)
		}
		if s.Hash != m.Hash || s.Events != m.Events {
			t.Fatalf("P=%d: Scale returned mismatched rows despite passing: %+v vs %+v", s.Procs, s, m)
		}
		if s.PeakHeap == 0 || m.PeakHeap == 0 {
			t.Fatalf("P=%d: zero peak-heap sample", s.Procs)
		}
	}
	if !strings.Contains(buf.String(), "streamed") {
		t.Fatal("Scale wrote no table")
	}
}

// TestScaleStreamedHashIndependentOfWorkers runs the streamed pipeline
// concurrently on the campaign pool at different worker counts: the
// profile hash of each run must match the sequential run's, no matter how
// the jobs interleave — the same output-identity guarantee the experiment
// campaigns make for the materialized path.
func TestScaleStreamedHashIndependentOfWorkers(t *testing.T) {
	const jobs = 6
	hashes := func(workers int) []string {
		out := make([]string, jobs)
		err := campaign.Stream(jobs,
			campaign.Options{Workers: workers},
			func(i int) (string, error) {
				_, h, err := runScaleStreamed(2+i%3, scaleBody)
				return h, err
			},
			func(i int, h string) error {
				out[i] = h
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq := hashes(1)
	par := hashes(8)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("job %d: hash differs between -j 1 (%s) and -j 8 (%s)", i, seq[i], par[i])
		}
	}
}

// TestScaleStreamedBig runs the big-rank experiment at toy counts: rows
// must be well-formed and byte-deterministic across repeats (the
// committed bench baseline depends on the hash being a pure function of
// the rank count).
func TestScaleStreamedBig(t *testing.T) {
	var buf bytes.Buffer
	rows, err := ScaleStreamed(&buf, []int{8, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	again, err := ScaleStreamed(&buf, []int{8, 32})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if r.Events == 0 || r.PeakHeap == 0 || r.EventsPerSec <= 0 {
			t.Fatalf("row %+v: degenerate measurement", r)
		}
		if again[i].Hash != r.Hash || again[i].Events != r.Events {
			t.Fatalf("P=%d: not deterministic across repeats: %+v vs %+v", r.Procs, r, again[i])
		}
	}
	if !strings.Contains(buf.String(), "scalebig") {
		t.Fatal("ScaleStreamed wrote no table")
	}
}
