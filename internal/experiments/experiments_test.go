package experiments

import (
	"bytes"
	"io"
	"math"
	"runtime"
	"strings"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/vtime"
)

func TestFig32(t *testing.T) {
	var buf bytes.Buffer
	res, err := Fig32(&buf, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sweep) != 4 {
		t.Fatalf("sweep rows = %d", len(res.Sweep))
	}
	// Every parameter set must be detected as wait_at_mpi_barrier.
	for _, r := range res.Sweep {
		if r.TopProperty != analyzer.PropWaitAtBarrier {
			t.Errorf("%s: top = %s", r.Point.Label, r.TopProperty)
		}
		if r.Expected > 0 {
			rel := math.Abs(r.Wait-r.Expected) / r.Expected
			if rel > 0.1 {
				t.Errorf("%s: wait %v vs expected %v", r.Point.Label, r.Wait, r.Expected)
			}
		}
	}
	// Severity-scaled rows must bracket the base row.
	if !(res.Sweep[2].Wait < res.Sweep[0].Wait && res.Sweep[0].Wait < res.Sweep[3].Wait) {
		t.Errorf("severity scaling broken: %v / %v / %v",
			res.Sweep[2].Wait, res.Sweep[0].Wait, res.Sweep[3].Wait)
	}
	// The paper's remark: init overhead dominates tiny programs.
	if res.InitOverheadSmall <= res.InitOverheadLarge {
		t.Errorf("init overhead: small %v <= large %v",
			res.InitOverheadSmall, res.InitOverheadLarge)
	}
	out := buf.String()
	for _, want := range []string{"timeline", "init/finalize", "block2"} {
		if !strings.Contains(out, want) {
			t.Errorf("artifact missing %q", want)
		}
	}
}

func TestFig33(t *testing.T) {
	var buf bytes.Buffer
	res, err := Fig33(&buf, 8)
	if err != nil {
		t.Fatal(err)
	}
	for prop, found := range res.Detected {
		if !found {
			t.Errorf("property class %s not detected", prop)
		}
	}
	if res.Events == 0 || res.Findings == 0 {
		t.Errorf("res = %+v", res)
	}
}

func TestFig34And35(t *testing.T) {
	var buf bytes.Buffer
	res, err := Fig34And35(&buf, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !res.LateBcastOnUpperHalfOnly {
		t.Error("late broadcast not localized to the upper half")
	}
	if !res.TopPathHasBcast {
		t.Error("call path does not point at late_broadcast/MPI_Bcast")
	}
	if res.RootWorldRank != 9 {
		t.Errorf("root world rank = %d, want 9 (paper setup)", res.RootWorldRank)
	}
}

func TestPositiveCorrectnessTable(t *testing.T) {
	rows, err := PositiveCorrectness(io.Discard, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(core.All()) {
		t.Fatalf("rows = %d, registry = %d", len(rows), len(core.All()))
	}
	for _, r := range rows {
		if !r.Correct {
			t.Errorf("%s: misdetected (top %s, want %s)", r.Property, r.Top, r.Expected)
		}
	}
}

func TestNegativeCorrectnessTable(t *testing.T) {
	rs, err := NegativeCorrectness(io.Discard, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if !r.AnalyzedOK {
			t.Errorf("%s: spurious %s (%.2f%%)", r.Program, r.TopProperty, r.TopSeverity*100)
		}
	}
}

func TestCh2(t *testing.T) {
	res, err := Ch2(io.Discard, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SemanticsPreserved {
		t.Error("semantics not preserved")
	}
	if res.Intrusiveness.Events == 0 {
		t.Error("no events measured")
	}
}

func TestCh4(t *testing.T) {
	rows, err := Ch4Applications(io.Discard, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.AsDesired {
			t.Errorf("%s/%v: top=%s sev=%.2f%%", r.App, r.Inject, r.Top, r.Severity*100)
		}
	}
}

func TestWorkAccuracyVirtual(t *testing.T) {
	res, err := WorkAccuracy(io.Discard, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.VirtualExact {
		t.Error("virtual work not exact")
	}
}

func TestAblationsVirtual(t *testing.T) {
	res, err := Ablations(io.Discard, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.VirtualRelErr > 0.01 {
		t.Errorf("virtual late-sender error %v", res.VirtualRelErr)
	}
	if res.EagerLateReceiverWait != 0 {
		t.Errorf("eager protocol produced late-receiver wait %v", res.EagerLateReceiverWait)
	}
	if math.Abs(res.RendezvousLateReceiverWait-0.1) > 0.01 {
		t.Errorf("rendezvous late-receiver wait %v, want ≈ 0.1", res.RendezvousLateReceiverWait)
	}
}

// --- real-clock integration tests (skipped with -short) -----------------

// needCPUs skips real-clock tests that require genuinely parallel
// execution: on fewer cores the ranks timeshare one CPU and the wall-clock
// wait states are scheduling artifacts — the very distortion the paper
// warns about for loaded machines.
func needCPUs(t *testing.T, n int) {
	t.Helper()
	if testing.Short() {
		t.Skip("real-clock test")
	}
	if runtime.NumCPU() < n {
		t.Skipf("needs %d CPUs for parallel real-clock execution, have %d", n, runtime.NumCPU())
	}
}

func TestRealModeLateSenderDetected(t *testing.T) {
	needCPUs(t, 2)
	tr, err := mpi.Run(mpi.Options{Procs: 2, Mode: vtime.Real}, func(c *mpi.Comm) {
		core.LateSender(c, 0.002, 0.02, 5)
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := analyzer.Analyze(tr, analyzer.Options{})
	top := rep.Top()
	if top == nil || top.Property != analyzer.PropLateSender {
		t.Fatalf("real mode: late sender not dominant:\n%s", rep.Render())
	}
	// One pair × 20ms × 5 reps = 100ms ± scheduling noise.
	got := rep.Wait(analyzer.PropLateSender)
	if got < 0.05 || got > 0.3 {
		t.Errorf("real-mode wait %v, want ≈ 0.1", got)
	}
}

func TestRealModeBarrierImbalance(t *testing.T) {
	needCPUs(t, 4)
	tr, err := mpi.Run(mpi.Options{Procs: 4, Mode: vtime.Real}, func(c *mpi.Comm) {
		if c.Rank() == 0 {
			c.Work(0.03)
		} else {
			c.Work(0.005)
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := analyzer.Analyze(tr, analyzer.Options{})
	got := rep.Wait(analyzer.PropWaitAtBarrier)
	// 3 ranks × ~25ms.
	if got < 0.04 || got > 0.25 {
		t.Errorf("real-mode barrier wait %v, want ≈ 0.075", got)
	}
}

func TestRealModeNegativeStaysQuiet(t *testing.T) {
	needCPUs(t, 2)
	tr, err := mpi.Run(mpi.Options{Procs: 2, Mode: vtime.Real}, func(c *mpi.Comm) {
		core.NegativeBalancedMPI(c, 0.01, 3)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Real mode is noisy: allow a generous threshold, but nothing should
	// be grossly wrong with a balanced program.
	rep := analyzer.Analyze(tr, analyzer.Options{Threshold: 0.15})
	if top := rep.Top(); top != nil {
		t.Errorf("balanced real-mode program flagged: %s (%.2f%%)",
			top.Property, top.Severity*100)
	}
}

func TestRealModeWorkAccuracy(t *testing.T) {
	// Needs a CPU to itself: when the whole test suite contends for the
	// core, the calibrated spin loop overshoots — exactly the "not
	// guaranteed to be stable especially under heavy work load"
	// limitation the paper states for the original do_work.
	needCPUs(t, 2)
	res, err := WorkAccuracy(io.Discard, true)
	if err != nil {
		t.Fatal(err)
	}
	// The paper promises millisecond-level accuracy; allow 30% relative
	// error on loaded CI machines.
	if res.RealMeanErr > 0.3 {
		t.Errorf("real-mode work error %.1f%%", res.RealMeanErr*100)
	}
}
