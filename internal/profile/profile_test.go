package profile_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/omp"
	"repro/internal/profile"
	"repro/internal/trace"
)

// -update regenerates the golden files instead of comparing against them.
var update = flag.Bool("update", false, "rewrite golden files")

// runFig35 executes the Fig 3.4/3.5 two-communicator program and analyzes
// it exactly as experiments.Fig34And35 does.
func runFig35(t *testing.T, procs int) (*trace.Trace, *analyzer.Report) {
	t.Helper()
	tr, err := mpi.Run(mpi.Options{Procs: procs}, func(c *mpi.Comm) {
		core.TwoCommunicators(c, core.DefaultComposite())
	})
	if err != nil {
		t.Fatalf("two-communicator run: %v", err)
	}
	return tr, analyzer.Analyze(tr, analyzer.Options{Threshold: 0.001})
}

// runBarrier executes the imbalance_at_mpi_barrier property function with
// the distribution's High parameter overridden — the knob the drift tests
// use to inject a severity change.
func runBarrier(t *testing.T, procs int, high float64) (*trace.Trace, *analyzer.Report) {
	t.Helper()
	spec, ok := core.Get("imbalance_at_mpi_barrier")
	if !ok {
		t.Fatal("imbalance_at_mpi_barrier not registered")
	}
	a := spec.Defaults()
	ds := a.Distr["distr"]
	ds.High = high
	a.Distr["distr"] = ds
	tr, err := mpi.Run(mpi.Options{Procs: procs}, func(c *mpi.Comm) {
		spec.Run(core.Env{Comm: c, Ctx: c.Ctx(), OMP: omp.Options{Threads: 1}}, a)
	})
	if err != nil {
		t.Fatalf("barrier run: %v", err)
	}
	return tr, analyzer.Analyze(tr, analyzer.Options{})
}

// mustFromRun extracts a profile from a healthy run, failing the test on
// the non-finite rejection path (which dedicated tests poke directly).
func mustFromRun(t *testing.T, experiment string, tr *trace.Trace, rep *analyzer.Report, run profile.RunInfo) *profile.Profile {
	t.Helper()
	p, err := profile.FromRun(experiment, tr, rep, run)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFromRunFillsMetadata(t *testing.T) {
	tr, rep := runBarrier(t, 4, 0.06)
	p := mustFromRun(t, "barrier", tr, rep, profile.RunInfo{})
	if p.Schema != profile.SchemaVersion {
		t.Errorf("schema = %d", p.Schema)
	}
	if p.Run.Procs != 4 || p.Run.Threads != 1 {
		t.Errorf("run shape = %dx%d, want 4x1", p.Run.Procs, p.Run.Threads)
	}
	if p.Run.Clock != "virtual" {
		t.Errorf("clock = %q", p.Run.Clock)
	}
	if p.ConfigHash == "" || p.Events == 0 || p.TotalTime <= 0 {
		t.Errorf("metadata incomplete: %+v", p)
	}
	bar := p.Get(analyzer.PropWaitAtBarrier)
	if bar == nil || !bar.Significant || bar.Wait <= 0 {
		t.Fatalf("wait_at_mpi_barrier not recorded as significant: %+v", bar)
	}
	if len(bar.Locations) == 0 || len(bar.Paths) == 0 {
		t.Errorf("missing breakdowns: %d locations, %d paths", len(bar.Locations), len(bar.Paths))
	}
	if info := p.Get(analyzer.PropInitFinalize); info == nil || !info.Info || info.Significant {
		t.Errorf("init/finalize should be a non-significant info metric: %+v", info)
	}
}

// TestFig35RoundTripAndGolden is the determinism guard of the
// content-addressed store: the Fig 3.5 two-communicator run must
// serialize, reload, and re-hash identically, across independent runs,
// and match the committed golden file byte for byte.
func TestFig35RoundTripAndGolden(t *testing.T) {
	tr, rep := runFig35(t, 8)
	p := mustFromRun(t, "fig35_two_communicators", tr, rep, profile.RunInfo{})
	hash1, err := p.Hash()
	if err != nil {
		t.Fatal(err)
	}

	// Serialize → reload → re-hash.
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	reloaded, err := profile.Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	hash2, err := reloaded.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hash1 != hash2 {
		t.Errorf("reload changed hash: %s vs %s", hash1, hash2)
	}

	// An independent identical run must produce the identical profile.
	tr2, rep2 := runFig35(t, 8)
	p2 := mustFromRun(t, "fig35_two_communicators", tr2, rep2, profile.RunInfo{})
	hash3, err := p2.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hash1 != hash3 {
		t.Errorf("rerun changed hash: %s vs %s", hash1, hash3)
	}

	// Golden file.
	golden := filepath.Join("testdata", "fig35_p8.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with: go test ./internal/profile -run Golden -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("profile drifted from golden file %s (regenerate with -update if intended)", golden)
	}
}

func TestHashChangesWithContent(t *testing.T) {
	tr, rep := runBarrier(t, 4, 0.06)
	p1 := mustFromRun(t, "barrier", tr, rep, profile.RunInfo{})
	tr2, rep2 := runBarrier(t, 4, 0.12)
	p2 := mustFromRun(t, "barrier", tr2, rep2, profile.RunInfo{})
	h1, _ := p1.Hash()
	h2, _ := p2.Hash()
	if h1 == h2 {
		t.Error("doubling the imbalance did not change the content hash")
	}
	// Same setup → same config hash: content drift stays comparable.
	if p1.ConfigHash != p2.ConfigHash {
		t.Errorf("config hash should not depend on measured waits: %s vs %s",
			p1.ConfigHash, p2.ConfigHash)
	}
}

func TestConfigHashSeparatesSetups(t *testing.T) {
	tr, rep := runBarrier(t, 4, 0.06)
	a := mustFromRun(t, "barrier", tr, rep, profile.RunInfo{})
	b := mustFromRun(t, "barrier", tr, rep, profile.RunInfo{Params: map[string]string{"high": "0.12"}})
	c := mustFromRun(t, "other", tr, rep, profile.RunInfo{})
	if a.ConfigHash == b.ConfigHash {
		t.Error("params ignored by config hash")
	}
	if a.ConfigHash == c.ConfigHash {
		t.Error("experiment name ignored by config hash")
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	if _, err := profile.Decode(bytes.NewReader([]byte(`{"schema": 999, "experiment": "x"}`))); err == nil {
		t.Error("wrong schema version accepted")
	}
	if _, err := profile.Decode(bytes.NewReader([]byte(`{"schema": 1}`))); err == nil {
		t.Error("missing experiment name accepted")
	}
	if _, err := profile.Decode(bytes.NewReader([]byte(`not json`))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestWriteReadFile(t *testing.T) {
	tr, rep := runBarrier(t, 4, 0.06)
	p := mustFromRun(t, "barrier", tr, rep, profile.RunInfo{})
	path := filepath.Join(t.TempDir(), "barrier.json")
	if err := p.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := profile.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	h1, _ := p.Hash()
	h2, _ := got.Hash()
	if h1 != h2 {
		t.Errorf("file round trip changed hash")
	}
}
