// Package profile defines the canonical, versioned performance profile of
// one test-suite run — the persistent record the paper's methodology is
// missing when analysis results are printed and forgotten.
//
// A Profile is extracted from an analyzer.Report plus the trace.Trace it
// was computed from.  It captures, per detected property, the accumulated
// waiting time, the severity, the call-path breakdown, and the
// per-location wait distribution, together with run metadata (experiment
// name, config hash, ranks × threads, clock mode).  The encoding is
// deliberately canonical: every collection is a sorted slice rather than
// a map and every float is rounded to a fixed quantum, so that two
// identical runs marshal to byte-identical JSON and hash to the same
// content address.  That stable identity is what the regression store
// (package regress) is built on, in the spirit of Perun's version-indexed
// performance profiles.
//
// Profiles come from FromRun (materialized trace) or FromAnalysis
// (streamed runs, where no trace ever exists); both produce byte-identical
// output for the same run.  doc/FORMATS.md specifies the schema-1 JSON
// encoding and the hashing rules normatively.
package profile

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/analyzer"
	"repro/internal/trace"
)

// SchemaVersion identifies the profile wire format.  Decoding rejects
// other versions; bump it on any breaking change to the structs below.
const SchemaVersion = 1

// quantum is the canonical rounding applied to every float in a profile
// (one nanosecond for times; the same grid is fine for severities and
// rates).  Rounding removes the last-bit noise that different
// float-accumulation orders could otherwise leave in equal-valued runs,
// which would break content-addressed identity.
const quantum = 1e-9

// quantize rounds v to the canonical grid.  Non-finite input is poisoned
// to NaN (±Inf included): there is exactly one non-finite representative,
// and FromAnalysis rejects it before a profile is ever emitted.
func quantize(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return math.NaN()
	}
	q := math.Round(v/quantum) * quantum
	if q == 0 {
		return 0 // normalize -0
	}
	return q
}

// RunInfo is the configuration metadata recorded with a profile.  It is
// the identity of the *setup*; two profiles are only comparable when
// their RunInfo hashes match.
type RunInfo struct {
	// Clock is the vtime mode the run used ("virtual" or "real").
	Clock string `json:"clock"`
	// Procs and Threads are the MPI rank and OpenMP thread counts.
	Procs   int `json:"procs"`
	Threads int `json:"threads"`
	// Params holds free-form experiment parameters (severity scales,
	// repetition counts, …) that distinguish otherwise-identical runs.
	Params map[string]string `json:"params,omitempty"`
}

// PathWait is one call path's share of a property's waiting time.
type PathWait struct {
	Path string  `json:"path"`
	Wait float64 `json:"wait_s"`
}

// LocationWait is one location's share of a property's waiting time.
type LocationWait struct {
	Rank   int32   `json:"rank"`
	Thread int32   `json:"thread"`
	Wait   float64 `json:"wait_s"`
}

// Key renders the location as the analyzer's "rank.thread" form.
func (l LocationWait) Key() string { return fmt.Sprintf("%d.%d", l.Rank, l.Thread) }

// Property is the persisted form of one analyzer result.
type Property struct {
	Name string `json:"name"`
	// Wait is the accumulated waiting time in seconds (for info metrics:
	// the accumulated cost).
	Wait float64 `json:"wait_s"`
	// Severity is Wait normalized by the run's total resource time.
	Severity  float64 `json:"severity"`
	Instances int     `json:"instances"`
	// Significant records whether the property cleared the analyzer's
	// threshold — the bit whose flips are positive/negative correctness
	// changes under regression diffing.
	Significant bool `json:"significant"`
	// Info marks cost metrics (init/finalize overhead, MPI time
	// fraction) that are never "findings".
	Info bool `json:"info,omitempty"`
	// Paths is the call-path breakdown, sorted by wait (desc), then path.
	Paths []PathWait `json:"paths,omitempty"`
	// Locations is the per-location wait distribution in rank-major
	// order — the wait vector regression diffing compares for outliers.
	Locations []LocationWait `json:"locations,omitempty"`
}

// LocationMap returns the wait distribution keyed by "rank.thread".
func (p *Property) LocationMap() map[string]float64 {
	m := make(map[string]float64, len(p.Locations))
	for _, l := range p.Locations {
		m[l.Key()] = l.Wait
	}
	return m
}

// Profile is the canonical record of one analyzed run.
type Profile struct {
	Schema     int     `json:"schema"`
	Experiment string  `json:"experiment"`
	Run        RunInfo `json:"run"`
	// ConfigHash is the short content hash of (Experiment, Run,
	// Threshold): the comparability key of the profile.
	ConfigHash string  `json:"config_hash"`
	Duration   float64 `json:"duration_s"`
	TotalTime  float64 `json:"total_time_s"`
	Threshold  float64 `json:"threshold"`
	Events     int     `json:"events"`
	// Messages carries the analyzer's p2p traffic summary.
	Messages analyzer.MessageStats `json:"messages"`
	// Properties holds every detected property, sorted by name.
	Properties []Property `json:"properties"`
}

// TraceInfo carries the trace-shape metadata a profile records: the
// location grid and the event count.  FromRun derives it from a
// materialized trace; streaming runs derive it from the drained
// trace.Stream (TraceInfoOfStream), where no trace ever exists.
type TraceInfo struct {
	Ranks, Threads int
	Events         int
}

// TraceInfoOf extracts the shape metadata of a materialized trace.
func TraceInfoOf(tr *trace.Trace) TraceInfo {
	ranks, threads := tr.Shape()
	return TraceInfo{Ranks: ranks, Threads: threads, Events: len(tr.Events)}
}

// TraceInfoOfStream extracts the shape metadata of a drained stream; the
// result equals TraceInfoOf on the materialized trace of the same run.
func TraceInfoOfStream(st *trace.Stream) TraceInfo {
	ranks, threads := st.Shape()
	return TraceInfo{Ranks: ranks, Threads: threads, Events: st.Events()}
}

// FromRun extracts the canonical profile of one analyzed run.  Zero
// fields of run are filled from the trace (Procs/Threads from the
// location grid, Clock defaulting to "virtual").  A report carrying
// non-finite values (NaN/Inf waits or severities) is rejected: such a
// profile would hash, store, and then gate as "clean" in every
// NaN-blind tolerance comparison downstream.
func FromRun(experiment string, tr *trace.Trace, rep *analyzer.Report, run RunInfo) (*Profile, error) {
	return FromAnalysis(experiment, TraceInfoOf(tr), rep, run)
}

// FromAnalysis extracts the canonical profile from a report plus explicit
// trace-shape metadata — the entry point for streamed runs, whose events
// were never materialized.  A streamed and a materialized analysis of the
// same run produce byte-identical profiles (and so the same content hash).
// Like FromRun it rejects reports with non-finite values.
func FromAnalysis(experiment string, info TraceInfo, rep *analyzer.Report, run RunInfo) (*Profile, error) {
	if run.Procs == 0 {
		run.Procs = info.Ranks
	}
	if run.Threads == 0 {
		run.Threads = info.Threads
	}
	if run.Clock == "" {
		run.Clock = "virtual"
	}
	p := &Profile{
		Schema:     SchemaVersion,
		Experiment: experiment,
		Run:        run,
		Duration:   quantize(rep.Duration),
		TotalTime:  quantize(rep.TotalTime),
		Threshold:  quantize(rep.Threshold),
		Events:     info.Events,
		Messages:   rep.Messages,
	}
	p.Messages.AvgBytes = quantize(p.Messages.AvgBytes)
	p.Messages.Rate = quantize(p.Messages.Rate)
	p.ConfigHash = p.configHash()

	for _, name := range rep.Properties() {
		r := rep.Results[name]
		prop := Property{
			Name:        name,
			Wait:        quantize(r.Wait),
			Severity:    quantize(r.Severity),
			Instances:   r.Instances,
			Info:        analyzer.IsInfo(name),
			Significant: !analyzer.IsInfo(name) && r.Severity >= rep.Threshold,
		}
		for path, w := range r.ByPath {
			prop.Paths = append(prop.Paths, PathWait{Path: path, Wait: quantize(w)})
		}
		sort.Slice(prop.Paths, func(i, j int) bool {
			if prop.Paths[i].Wait != prop.Paths[j].Wait {
				return prop.Paths[i].Wait > prop.Paths[j].Wait
			}
			return prop.Paths[i].Path < prop.Paths[j].Path
		})
		for loc, w := range r.ByLocation {
			prop.Locations = append(prop.Locations, LocationWait{
				Rank: loc.Rank, Thread: loc.Thread, Wait: quantize(w),
			})
		}
		sort.Slice(prop.Locations, func(i, j int) bool {
			if prop.Locations[i].Rank != prop.Locations[j].Rank {
				return prop.Locations[i].Rank < prop.Locations[j].Rank
			}
			return prop.Locations[i].Thread < prop.Locations[j].Thread
		})
		p.Properties = append(p.Properties, prop)
	}
	if bad := p.firstNonFinite(); bad != "" {
		return nil, fmt.Errorf("profile: %s: non-finite %s", experiment, bad)
	}
	return p, nil
}

// firstNonFinite names the first non-finite float recorded anywhere in
// the profile ("" when all values are finite).  quantize has already
// collapsed every non-finite input to NaN, so NaN checks suffice.
func (p *Profile) firstNonFinite() string {
	bad := func(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }
	switch {
	case bad(p.Duration):
		return "duration"
	case bad(p.TotalTime):
		return "total time"
	case bad(p.Threshold):
		return "threshold"
	case bad(p.Messages.AvgBytes):
		return "message avg bytes"
	case bad(p.Messages.Rate):
		return "message rate"
	}
	for i := range p.Properties {
		prop := &p.Properties[i]
		if bad(prop.Wait) {
			return fmt.Sprintf("wait for %s", prop.Name)
		}
		if bad(prop.Severity) {
			return fmt.Sprintf("severity for %s", prop.Name)
		}
		for _, pw := range prop.Paths {
			if bad(pw.Wait) {
				return fmt.Sprintf("path wait for %s at %s", prop.Name, pw.Path)
			}
		}
		for _, lw := range prop.Locations {
			if bad(lw.Wait) {
				return fmt.Sprintf("location wait for %s at %s", prop.Name, lw.Key())
			}
		}
	}
	return ""
}

// Get returns the named property, or nil.
func (p *Profile) Get(name string) *Property {
	for i := range p.Properties {
		if p.Properties[i].Name == name {
			return &p.Properties[i]
		}
	}
	return nil
}

// PropertyNames returns the names of all recorded properties, in order.
func (p *Profile) PropertyNames() []string {
	names := make([]string, len(p.Properties))
	for i := range p.Properties {
		names[i] = p.Properties[i].Name
	}
	return names
}

// Significant returns the recorded significant (non-info) properties.
func (p *Profile) Significant() []Property {
	var out []Property
	for _, prop := range p.Properties {
		if prop.Significant {
			out = append(out, prop)
		}
	}
	return out
}

// configHash computes the short comparability hash.
func (p *Profile) configHash() string {
	blob, err := json.Marshal(struct {
		Experiment string  `json:"experiment"`
		Run        RunInfo `json:"run"`
		Threshold  float64 `json:"threshold"`
	}{p.Experiment, p.Run, p.Threshold})
	if err != nil {
		panic(fmt.Sprintf("profile: config hash: %v", err)) // unreachable: plain structs
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])[:12]
}

// Marshal renders the canonical JSON encoding (indented, trailing
// newline) that both file storage and hashing are defined over.
func (p *Profile) Marshal() ([]byte, error) {
	blob, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("profile: marshal: %w", err)
	}
	return append(blob, '\n'), nil
}

// Hash returns the content address of the profile: the hex sha256 of its
// canonical encoding.  Identical runs hash identically; any change in a
// recorded severity, path, or distribution changes the hash.
func (p *Profile) Hash() (string, error) {
	blob, err := p.Marshal()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:]), nil
}

// Encode writes the canonical encoding to w.
func (p *Profile) Encode(w io.Writer) error {
	blob, err := p.Marshal()
	if err != nil {
		return err
	}
	_, err = w.Write(blob)
	return err
}

// WriteFile writes the canonical encoding to path.  The write is atomic
// (temp file + rename in the same directory): readers — and in particular
// the content-addressed regression store, whose existence fast-path would
// make a truncated object permanent — never observe a partial profile.
func (p *Profile) WriteFile(path string) error {
	blob, err := p.Marshal()
	if err != nil {
		return err
	}
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(blob); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Decode reads one profile and validates its schema version.
func Decode(r io.Reader) (*Profile, error) {
	var p Profile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("profile: decode: %w", err)
	}
	if p.Schema != SchemaVersion {
		return nil, fmt.Errorf("profile: schema version %d (want %d)", p.Schema, SchemaVersion)
	}
	if p.Experiment == "" {
		return nil, fmt.Errorf("profile: missing experiment name")
	}
	// JSON cannot encode NaN/Inf, but Go's encoder is not the only writer
	// of profile files: reject hand-crafted non-finite values here so a
	// poisoned profile can never enter the store or pass gating.
	if bad := p.firstNonFinite(); bad != "" {
		return nil, fmt.Errorf("profile: %s: non-finite %s", p.Experiment, bad)
	}
	return &p, nil
}

// ReadFile loads a profile from path.
func ReadFile(path string) (*Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}
