package profile_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/profile"
)

// WriteFile must be atomic: a failed final rename leaves neither a
// partial file at the target path nor temp litter next to it.
func TestWriteFileAtomic(t *testing.T) {
	tr, rep := runBarrier(t, 2, 0.06)
	p := mustFromRun(t, "barrier", tr, rep, profile.RunInfo{})

	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	// Failure injection: the rename target is an occupied directory.
	if err := os.Mkdir(path, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(path, "occupant"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteFile(path); err == nil {
		t.Fatal("rename onto non-empty directory succeeded")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp litter left behind: %v", ents)
	}

	// Success path lands a complete, hash-stable file.
	ok := filepath.Join(dir, "ok.json")
	if err := p.WriteFile(ok); err != nil {
		t.Fatal(err)
	}
	got, err := profile.ReadFile(ok)
	if err != nil {
		t.Fatal(err)
	}
	h1, _ := p.Hash()
	h2, _ := got.Hash()
	if h1 != h2 {
		t.Fatalf("atomic write changed content: %s != %s", h2, h1)
	}
}
