package profile_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/profile"
	"repro/internal/trace"
)

// poisonableReport builds a minimal healthy analyzer report whose
// fields the table tests below poison one at a time.
func poisonableReport() *analyzer.Report {
	return &analyzer.Report{
		TotalTime: 10,
		Duration:  2.5,
		Threshold: 0.005,
		Results: map[string]*analyzer.Result{
			analyzer.PropLateSender: {
				Property:  analyzer.PropLateSender,
				Wait:      0.5,
				Severity:  0.05,
				Instances: 3,
				ByPath:    map[string]float64{"main/send": 0.5},
				ByLocation: map[trace.Location]float64{
					{Rank: 0, Thread: 0}: 0.2,
					{Rank: 1, Thread: 0}: 0.3,
				},
			},
		},
	}
}

// TestFromAnalysisRejectsNonFinite is the regression test for poisoned
// profiles entering the pipeline: a NaN or Inf anywhere in the report
// must be rejected at extraction, because every tolerance comparison
// downstream is NaN-blind and would gate the profile "clean".
func TestFromAnalysisRejectsNonFinite(t *testing.T) {
	info := profile.TraceInfo{Ranks: 2, Threads: 1, Events: 16}
	for _, tc := range []struct {
		name   string
		poison func(r *analyzer.Report)
		detail string // substring the error must carry
	}{
		{"NaN wait", func(r *analyzer.Report) {
			r.Results[analyzer.PropLateSender].Wait = math.NaN()
		}, "wait for late_sender"},
		{"+Inf wait", func(r *analyzer.Report) {
			r.Results[analyzer.PropLateSender].Wait = math.Inf(1)
		}, "wait for late_sender"},
		{"NaN severity", func(r *analyzer.Report) {
			r.Results[analyzer.PropLateSender].Severity = math.NaN()
		}, "severity for late_sender"},
		{"NaN path wait", func(r *analyzer.Report) {
			r.Results[analyzer.PropLateSender].ByPath["main/send"] = math.NaN()
		}, "path wait for late_sender"},
		{"-Inf location wait", func(r *analyzer.Report) {
			r.Results[analyzer.PropLateSender].ByLocation[trace.Location{Rank: 1}] = math.Inf(-1)
		}, "location wait for late_sender at 1.0"},
		{"NaN duration", func(r *analyzer.Report) { r.Duration = math.NaN() }, "duration"},
		{"Inf total time", func(r *analyzer.Report) { r.TotalTime = math.Inf(1) }, "total time"},
		{"NaN message rate", func(r *analyzer.Report) { r.Messages.Rate = math.NaN() }, "message rate"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rep := poisonableReport()
			tc.poison(rep)
			_, err := profile.FromAnalysis("poisoned", info, rep, profile.RunInfo{})
			if err == nil {
				t.Fatal("poisoned report produced a profile")
			}
			if !strings.Contains(err.Error(), "non-finite") || !strings.Contains(err.Error(), tc.detail) {
				t.Fatalf("error %q does not name the poisoned field (%q)", err, tc.detail)
			}
		})
	}

	// And the healthy report still extracts.
	if _, err := profile.FromAnalysis("healthy", info, poisonableReport(), profile.RunInfo{}); err != nil {
		t.Fatalf("healthy report rejected: %v", err)
	}
}

// TestDecodeRejectsNonFinite: Go's JSON encoder cannot emit NaN, but a
// hand-crafted profile file can carry one through other tools; Decode
// must reject it before it reaches the store.
func TestDecodeRejectsNonFinite(t *testing.T) {
	// JSON has no NaN literal, so a poisoned file would use a huge
	// exponent or be patched binary; emulate by decoding a profile and
	// checking the validator directly through Decode's error path with
	// a number JSON *can* express being rejected is not possible — so
	// construct the profile in memory and verify Marshal refuses it
	// (the canonical encoding is the only thing a store ever writes).
	p := &profile.Profile{
		Schema:     profile.SchemaVersion,
		Experiment: "poisoned",
		TotalTime:  1,
		Properties: []profile.Property{{Name: "late_sender", Wait: math.NaN()}},
	}
	if _, err := p.Marshal(); err == nil {
		t.Fatal("Marshal encoded a NaN wait")
	}
	if _, err := p.Hash(); err == nil {
		t.Fatal("Hash succeeded on a NaN wait")
	}
}
