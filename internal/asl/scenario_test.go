package asl

import (
	"math"
	"strings"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/core"
	"repro/internal/distr"
	"repro/internal/mpi"
	"repro/internal/omp"
)

const testScenario = `
scenario skewed_pipeline {
    help "late senders feeding a message-size ramp";
    param base  float = 0.005 in [0.001, 0.01];
    param extra float = 0.03  in [0.01, 0.05];
    param r     int   = 3     in [1, 4];
    inject delayed_send(base, extra, r);
    inject ramp_send(256, 8192, r);
    detects "late_sender";
    severity floor(ranks() / 2) * extra * r;
}
`

const testDistrScenario = `
scenario drifting_phase {
    help "distribution-skewed work closing on a barrier";
    param work distr = block2(0.005, 0.03);
    param r    int   = 3 in [1, 5];
    inject skewed_barrier(work, r);
    severity r * imbalance(work);
}
`

func parseScenario(t *testing.T, src string) *Scenario {
	t.Helper()
	f, err := ParseFile(src)
	if err != nil {
		t.Fatalf("ParseFile: %v", err)
	}
	if len(f.Scenarios) != 1 {
		t.Fatalf("got %d scenarios, want 1", len(f.Scenarios))
	}
	return f.Scenarios[0]
}

// TestScenarioCompiledSpecGolden pins the compiled core.Spec of the
// committed scenario: names, kinds, defaults, fuzz ranges, detection,
// embedded source — the registration contract everything downstream
// (generator, sweeps, conformance, fuzzer) consumes.
func TestScenarioCompiledSpecGolden(t *testing.T) {
	sc := parseScenario(t, testScenario)
	spec := sc.Spec()
	if spec == nil {
		t.Fatal("nil spec after compile")
	}
	if spec.Name != "skewed_pipeline" {
		t.Errorf("spec.Name = %q", spec.Name)
	}
	if spec.Paradigm != core.ParadigmMPI {
		t.Errorf("spec.Paradigm = %v", spec.Paradigm)
	}
	if spec.Help != "late senders feeding a message-size ramp" {
		t.Errorf("spec.Help = %q", spec.Help)
	}
	if sc.Detects != analyzer.PropLateSender {
		t.Errorf("Detects = %q", sc.Detects)
	}
	if sc.Localize != "skewed_pipeline" {
		t.Errorf("Localize = %q", sc.Localize)
	}
	if len(spec.Companions) != 0 {
		t.Errorf("Companions = %v, want none (ramp_send detects nothing)", spec.Companions)
	}
	if !strings.HasPrefix(spec.ASL, "scenario skewed_pipeline {") ||
		!strings.HasSuffix(spec.ASL, "}") {
		t.Errorf("embedded source not the scenario slice: %q", spec.ASL)
	}

	want := []core.Param{
		{Name: "base", Kind: core.ParamFloat, DefFloat: 0.005, MinFloat: 0.001, MaxFloat: 0.01,
			Help: "scenario parameter base"},
		{Name: "extra", Kind: core.ParamFloat, DefFloat: 0.03, MinFloat: 0.01, MaxFloat: 0.05,
			Help: "scenario parameter extra"},
		{Name: "r", Kind: core.ParamInt, DefInt: 3, MinInt: 1, MaxInt: 4,
			Help: "scenario parameter r"},
	}
	if len(spec.Params) != len(want) {
		t.Fatalf("got %d params, want %d", len(spec.Params), len(want))
	}
	for i, w := range want {
		if spec.Params[i] != w {
			t.Errorf("param %d = %+v, want %+v", i, spec.Params[i], w)
		}
	}

	// The closed form evaluates the ASL severity expression.
	a := spec.Defaults()
	for _, procs := range []int{2, 3, 4, 8} {
		got := spec.ExpectedWait(procs, 1, a)
		exp := math.Floor(float64(procs)/2) * 0.03 * 3
		if math.Abs(got-exp) > 1e-12 {
			t.Errorf("ExpectedWait(procs=%d) = %v, want %v", procs, got, exp)
		}
	}
}

// TestScenarioImbalanceClosedForm checks the imbalance() helper against the
// distr package's ground truth, including the flat distribution (zero).
func TestScenarioImbalanceClosedForm(t *testing.T) {
	sc := parseScenario(t, testDistrScenario)
	spec := sc.Spec()
	a := spec.Defaults()
	df, dd, err := a.Distr["work"].Resolve()
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{2, 4, 6} {
		got := spec.ExpectedWait(procs, 1, a)
		exp := 3 * distr.Imbalance(df, procs, 1.0, dd)
		if math.Abs(got-exp) > 1e-12 {
			t.Errorf("ExpectedWait(procs=%d) = %v, want %v", procs, got, exp)
		}
	}
	flat := core.NewArgs()
	flat.Int["r"] = 3
	flat.Distr["work"] = core.DistrSpec{Name: "same", Low: 0.01}
	if got := spec.ExpectedWait(4, 1, flat); got != 0 {
		t.Errorf("flat distribution: ExpectedWait = %v, want 0", got)
	}
}

// TestScenarioRunInjectsAndLocalizes executes a compiled scenario directly
// and asserts the claimed detection, magnitude, and localization.
func TestScenarioRunInjectsAndLocalizes(t *testing.T) {
	sc := parseScenario(t, testScenario)
	spec := sc.Spec()
	const procs = 4
	a := spec.Defaults()
	tr, err := mpi.Run(mpi.Options{Procs: procs}, func(c *mpi.Comm) {
		spec.Run(core.Env{Comm: c, Ctx: c.Ctx(), OMP: omp.Options{Threads: 1}}, a)
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	rep := analyzer.Analyze(tr, analyzer.Options{})
	r := rep.Get(analyzer.PropLateSender)
	if r == nil {
		t.Fatalf("late_sender not detected\n%s", rep.Render())
	}
	exp := spec.ExpectedWait(procs, 1, a)
	if math.Abs(r.Wait-exp) > 0.01*exp+0.002 {
		t.Errorf("late_sender wait %v, closed form %v", r.Wait, exp)
	}
	if p := r.TopPath(); !strings.Contains(p, "skewed_pipeline") || !strings.Contains(p, "delayed_send") {
		t.Errorf("top path %q not under skewed_pipeline/delayed_send", p)
	}
	// The ramp shaped the message statistics: r late-sender rounds at the
	// base payload plus r ramp messages per pair, ending at 8 KiB.
	if rep.Messages.Count == 0 || rep.Messages.Bytes < 8192 {
		t.Errorf("ramp left no message volume: %+v", rep.Messages)
	}
}

// TestScenarioLocalizeClause pins the nested localize region.
func TestScenarioLocalizeClause(t *testing.T) {
	src := `
scenario located {
    param work distr = block2(0.004, 0.02);
    param r    int   = 2;
    inject skewed_barrier(work, r);
    localize "phase_core";
    severity r * imbalance(work);
}
`
	sc := parseScenario(t, src)
	if sc.Localize != "phase_core" {
		t.Fatalf("Localize = %q", sc.Localize)
	}
	tr, err := mpi.Run(mpi.Options{Procs: 4}, func(c *mpi.Comm) {
		sc.Spec().Run(core.Env{Comm: c, Ctx: c.Ctx(), OMP: omp.Options{Threads: 1}}, sc.Spec().Defaults())
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := analyzer.Analyze(tr, analyzer.Options{})
	r := rep.Get(analyzer.PropWaitAtBarrier)
	if r == nil {
		t.Fatalf("barrier wait not detected\n%s", rep.Render())
	}
	p := r.TopPath()
	for _, region := range []string{"located", "phase_core", "skewed_barrier"} {
		if !strings.Contains(p, region) {
			t.Errorf("top path %q misses region %q", p, region)
		}
	}
}

// TestScenarioCompanions: a scenario mixing primitives with different
// detections records the secondary ones as negative-axis companions.
func TestScenarioCompanions(t *testing.T) {
	src := `
scenario mixed {
    param base  float = 0.004;
    param extra float = 0.02;
    param work  distr = block2(0.004, 0.02);
    param r     int   = 2;
    inject delayed_send(base, extra, r);
    inject skewed_barrier(work, r);
    inject imbalanced_work(work, r);
    detects "late_sender";
    severity floor(ranks() / 2) * extra * r;
}
`
	sc := parseScenario(t, src)
	if sc.Detects != analyzer.PropLateSender {
		t.Fatalf("Detects = %q", sc.Detects)
	}
	want := map[string]bool{analyzer.PropWaitAtBarrier: true, analyzer.PropWaitAtNxN: true}
	if len(sc.Companions) != len(want) {
		t.Fatalf("Companions = %v", sc.Companions)
	}
	for _, c := range sc.Companions {
		if !want[c] {
			t.Errorf("unexpected companion %q", c)
		}
	}
}

// TestScenarioDetectsDefaultsToFirstPrimitive: without a detects clause the
// first wait-injecting primitive names the claim.
func TestScenarioDetectsDefaultsToFirstPrimitive(t *testing.T) {
	src := `
scenario defaulted {
    param work distr = block2(0.004, 0.02);
    param r    int   = 2;
    inject ramp_send(64, 128, r);
    inject imbalanced_work(work, r);
    severity r * imbalance(work);
}
`
	sc := parseScenario(t, src)
	if sc.Detects != analyzer.PropWaitAtNxN {
		t.Errorf("Detects = %q, want %q", sc.Detects, analyzer.PropWaitAtNxN)
	}
}

// TestRegisterSourceRoundTrip: registration makes the scenario a
// first-class registry citizen, and Unregister removes every trace.
func TestRegisterSourceRoundTrip(t *testing.T) {
	names, err := RegisterSource(testScenario)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { Unregister(names...) })
	if len(names) != 1 || names[0] != "skewed_pipeline" {
		t.Fatalf("registered %v", names)
	}
	spec, ok := core.Get("skewed_pipeline")
	if !ok {
		t.Fatal("scenario not in core registry")
	}
	if spec.ASL == "" {
		t.Error("registered spec lost its ASL source")
	}
	if got := analyzer.ExpectedDetection["skewed_pipeline"]; got != analyzer.PropLateSender {
		t.Errorf("ExpectedDetection = %q", got)
	}
	// Duplicate registration is rejected and leaves the registry intact.
	if _, err := RegisterSource(testScenario); err == nil {
		t.Error("duplicate registration accepted")
	}
	if _, ok := core.Get("skewed_pipeline"); !ok {
		t.Error("failed duplicate registration removed the original")
	}
	Unregister(names...)
	if _, ok := core.Get("skewed_pipeline"); ok {
		t.Error("Unregister left the spec registered")
	}
	if _, ok := analyzer.ExpectedDetection["skewed_pipeline"]; ok {
		t.Error("Unregister left the expected-detection entry")
	}
}

// TestRegisterSourceRollsBackOnCollision: when the second scenario of a
// source collides, the first must not stay registered.
func TestRegisterSourceRollsBackOnCollision(t *testing.T) {
	src := testScenario + `
scenario late_sender {
    param extra float = 0.02;
    param r     int   = 2;
    inject delayed_send(0.004, extra, r);
    severity floor(ranks() / 2) * extra * r;
}
`
	if _, err := RegisterSource(src); err == nil {
		t.Fatal("collision with built-in late_sender accepted")
	}
	if _, ok := core.Get("skewed_pipeline"); ok {
		core.Unregister("skewed_pipeline")
		t.Error("partial registration not rolled back")
	}
}

// TestPrimitivesTable pins the vocabulary the language reference documents.
func TestPrimitivesTable(t *testing.T) {
	prims := Primitives()
	if len(prims) != 4 {
		t.Fatalf("got %d primitives, want 4", len(prims))
	}
	byName := map[string]PrimitiveInfo{}
	for _, p := range prims {
		byName[p.Name] = p
	}
	if byName["delayed_send"].Detects != analyzer.PropLateSender {
		t.Errorf("delayed_send detects %q", byName["delayed_send"].Detects)
	}
	if byName["skewed_barrier"].Detects != analyzer.PropWaitAtBarrier {
		t.Errorf("skewed_barrier detects %q", byName["skewed_barrier"].Detects)
	}
	if byName["imbalanced_work"].Detects != analyzer.PropWaitAtNxN {
		t.Errorf("imbalanced_work detects %q", byName["imbalanced_work"].Detects)
	}
	if byName["ramp_send"].Detects != "" {
		t.Errorf("ramp_send detects %q, want none", byName["ramp_send"].Detects)
	}
}

// TestScenarioParamEnvHelpers exercises every closed-form helper through
// the severity expression.
func TestScenarioParamEnvHelpers(t *testing.T) {
	src := `
scenario helpers {
    param extra float = 0.02;
    param r     int   = 2;
    inject delayed_send(0.004, extra, r);
    severity min(max(floor(ranks()/2), 1), 64)
             * abs(0 - extra) * r
             + ceil(0.0) + sqrt(0) * threads();
}
`
	sc := parseScenario(t, src)
	got := sc.Spec().ExpectedWait(5, 2, sc.Spec().Defaults())
	want := 2 * 0.02 * 2 // floor(5/2)=2 senders, extra*r each
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("ExpectedWait = %v, want %v", got, want)
	}
}

// TestParseMixedFile: properties and scenarios coexist in one catalog, and
// the property-only Parse entry point still returns the properties.
func TestParseMixedFile(t *testing.T) {
	src := testScenario + `
property dominant_late_sender {
    condition severity("late_sender") > 0.05;
    severity  severity("late_sender");
}
`
	f, err := ParseFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Scenarios) != 1 || len(f.Props) != 1 {
		t.Fatalf("got %d scenarios, %d props", len(f.Scenarios), len(f.Props))
	}
	props, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(props) != 1 || props[0].Name != "dominant_late_sender" {
		t.Fatalf("Parse returned %v", props)
	}
	// Name collisions across the two forms are rejected.
	dup := testScenario + `
property skewed_pipeline {
    condition severity("late_sender") > 0;
}
`
	if _, err := ParseFile(dup); err == nil || !strings.Contains(err.Error(), "duplicate property") {
		t.Errorf("cross-form name collision: err = %v", err)
	}
}
