package asl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Lexer -------------------------------------------------------------------

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // operators and delimiters
)

type token struct {
	kind tokKind
	text string
	pos  int // byte offset
	line int // 1-based source line
	col  int // 1-based column within the line
}

// punctuation tokens, longest first so ">=" wins over ">".
var puncts = []string{
	"&&", "||", "<=", ">=", "==", "!=",
	"{", "}", "(", ")", "[", "]", ";", ",", "=", "+", "-", "*", "/", "<", ">", "!",
}

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	lineStart := 0
	col := func(off int) int { return off - lineStart + 1 }
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
			lineStart = i
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#' || (c == '/' && i+1 < len(src) && src[i+1] == '/'):
			// Comment to end of line.
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' {
				if src[j] == '\n' {
					return nil, fmt.Errorf("asl: line %d:%d: unterminated string", line, col(i))
				}
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("asl: line %d:%d: unterminated string", line, col(i))
			}
			toks = append(toks, token{tokString, src[i+1 : j], i, line, col(i)})
			i = j + 1
		case unicode.IsDigit(rune(c)) || (c == '.' && i+1 < len(src) && unicode.IsDigit(rune(src[i+1]))):
			j := i
			for j < len(src) && (unicode.IsDigit(rune(src[j])) || src[j] == '.' ||
				src[j] == 'e' || src[j] == 'E' ||
				((src[j] == '+' || src[j] == '-') && j > i && (src[j-1] == 'e' || src[j-1] == 'E'))) {
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j], i, line, col(i)})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], i, line, col(i)})
			i = j
		default:
			matched := false
			for _, p := range puncts {
				if strings.HasPrefix(src[i:], p) {
					toks = append(toks, token{tokPunct, p, i, line, col(i)})
					i += len(p)
					matched = true
					break
				}
			}
			if !matched {
				return nil, fmt.Errorf("asl: line %d:%d: unexpected character %q", line, col(i), c)
			}
		}
	}
	toks = append(toks, token{tokEOF, "", len(src), line, col(len(src))})
	return toks, nil
}

// errAt builds a diagnostic anchored at the offending token's exact
// position (line:column), never at the start of the enclosing statement.
func errAt(t token, format string, args ...interface{}) error {
	return fmt.Errorf("asl: line %d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

// tokDesc renders a token for diagnostics; the EOF sentinel reads as "end
// of input" instead of an empty quoted string.
func tokDesc(t token) string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// AST ----------------------------------------------------------------------

// evalEnv is an expression-evaluation environment: metric functions over an
// analyzer report (Metrics) or scenario parameters plus closed-form helpers
// (paramEnv, see scenario.go).
type evalEnv interface {
	call(name string, args []value) (value, error)
	lookup(name string) (value, error)
}

type node interface {
	eval(e evalEnv) (value, error)
}

type numLit float64

func (n numLit) eval(evalEnv) (value, error) { return num(float64(n)), nil }

type strLit string

func (s strLit) eval(evalEnv) (value, error) { return strV(string(s)), nil }

// ident references a scenario parameter by name.  Inside property bodies a
// bare identifier is a parse error (metric access is always a call), so
// ident nodes only ever appear in scenario expressions.
type ident struct {
	name string
	tok  token
}

func (id *ident) eval(e evalEnv) (value, error) { return e.lookup(id.name) }

type call struct {
	name string
	args []node
}

func (c *call) eval(e evalEnv) (value, error) {
	args := make([]value, len(c.args))
	for i, a := range c.args {
		v, err := a.eval(e)
		if err != nil {
			return value{}, err
		}
		args[i] = v
	}
	return e.call(c.name, args)
}

type unary struct {
	op string
	x  node
}

func (u *unary) eval(e evalEnv) (value, error) {
	v, err := u.x.eval(e)
	if err != nil {
		return value{}, err
	}
	switch u.op {
	case "-":
		if !v.isNum {
			return value{}, fmt.Errorf("asl: unary '-' on %s", v.kind())
		}
		return num(-v.f), nil
	case "!":
		if v.isNum || v.isStr {
			return value{}, fmt.Errorf("asl: '!' on %s", v.kind())
		}
		return boolV(!v.b), nil
	default:
		return value{}, fmt.Errorf("asl: unknown unary operator %q", u.op)
	}
}

type binary struct {
	op   string
	l, r node
}

func (b *binary) eval(e evalEnv) (value, error) {
	lv, err := b.l.eval(e)
	if err != nil {
		return value{}, err
	}
	// Short-circuit logical operators.
	if b.op == "&&" || b.op == "||" {
		if lv.isNum || lv.isStr {
			return value{}, fmt.Errorf("asl: %q on %s", b.op, lv.kind())
		}
		if b.op == "&&" && !lv.b {
			return boolV(false), nil
		}
		if b.op == "||" && lv.b {
			return boolV(true), nil
		}
		rv, err := b.r.eval(e)
		if err != nil {
			return value{}, err
		}
		if rv.isNum || rv.isStr {
			return value{}, fmt.Errorf("asl: %q on %s", b.op, rv.kind())
		}
		return boolV(rv.b), nil
	}
	rv, err := b.r.eval(e)
	if err != nil {
		return value{}, err
	}
	if !lv.isNum || !rv.isNum {
		return value{}, fmt.Errorf("asl: %q needs numeric operands, got %s and %s",
			b.op, lv.kind(), rv.kind())
	}
	switch b.op {
	case "+":
		return num(lv.f + rv.f), nil
	case "-":
		return num(lv.f - rv.f), nil
	case "*":
		return num(lv.f * rv.f), nil
	case "/":
		if rv.f == 0 {
			return num(0), nil // total-time denominators may be zero on empty traces
		}
		return num(lv.f / rv.f), nil
	case "<":
		return boolV(lv.f < rv.f), nil
	case "<=":
		return boolV(lv.f <= rv.f), nil
	case ">":
		return boolV(lv.f > rv.f), nil
	case ">=":
		return boolV(lv.f >= rv.f), nil
	case "==":
		return boolV(lv.f == rv.f), nil
	case "!=":
		return boolV(lv.f != rv.f), nil
	default:
		return value{}, fmt.Errorf("asl: unknown operator %q", b.op)
	}
}

// Parser --------------------------------------------------------------------

type parser struct {
	toks []token
	src  string
	i    int
	// identOK permits bare identifiers in expressions (scenario parameter
	// references).  Inside property bodies it stays false: every metric is
	// a function call there, and a bare identifier is a parse error.
	identOK bool
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) expectPunct(s string) error {
	t := p.next()
	if t.kind != tokPunct || t.text != s {
		return errAt(t, "expected %q, got %s", s, tokDesc(t))
	}
	return nil
}

func (p *parser) expectIdent(s string) error {
	t := p.next()
	if t.kind != tokIdent || t.text != s {
		return errAt(t, "expected %q, got %s", s, tokDesc(t))
	}
	return nil
}

// File is the parse result of one ASL source: property definitions
// (evaluated over analyzer reports) and scenario definitions (compiled into
// registrable property functions, see scenario.go).
type File struct {
	Props     []*Property
	Scenarios []*Scenario
}

// Parse parses a sequence of property definitions, skipping any scenario
// definitions after validating them — the catalog-evaluation entry point.
func Parse(src string) ([]*Property, error) {
	f, err := ParseFile(src)
	if err != nil {
		return nil, err
	}
	return f.Props, nil
}

// ParseFile parses properties and scenarios.  Scenarios are fully
// validated and compiled (File.Scenarios carry ready core.Spec values), so
// a nil error means every definition in src is usable.
func ParseFile(src string) (*File, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	f := &File{}
	seen := map[string]token{}
	for p.cur().kind != tokEOF {
		var name string
		var nameTok token
		switch t := p.cur(); {
		case t.kind == tokIdent && t.text == "scenario":
			sc, err := p.scenario()
			if err != nil {
				return nil, err
			}
			if err := sc.compile(); err != nil {
				return nil, err
			}
			f.Scenarios = append(f.Scenarios, sc)
			name, nameTok = sc.Name, sc.nameTok
		default:
			prop, err := p.property()
			if err != nil {
				return nil, err
			}
			f.Props = append(f.Props, prop)
			name, nameTok = prop.Name, prop.nameTok
		}
		if prev, dup := seen[name]; dup {
			return nil, errAt(nameTok, "duplicate property %q (first defined at line %d:%d)",
				name, prev.line, prev.col)
		}
		seen[name] = nameTok
	}
	if len(f.Props) == 0 && len(f.Scenarios) == 0 {
		return nil, fmt.Errorf("asl: no property definitions found")
	}
	return f, nil
}

func (p *parser) property() (*Property, error) {
	if err := p.expectIdent("property"); err != nil {
		return nil, err
	}
	nameTok := p.next()
	if nameTok.kind != tokIdent {
		return nil, errAt(nameTok, "expected property name, got %s", tokDesc(nameTok))
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	prop := &Property{Name: nameTok.text, nameTok: nameTok}
	for {
		t := p.cur()
		if t.kind == tokPunct && t.text == "}" {
			p.next()
			break
		}
		if t.kind != tokIdent {
			return nil, errAt(t, "expected clause, got %s", tokDesc(t))
		}
		switch t.text {
		case "condition":
			p.next()
			n, err := p.expr()
			if err != nil {
				return nil, err
			}
			if prop.condition != nil {
				return nil, errAt(t, "property %s: duplicate condition", prop.Name)
			}
			prop.condition = n
		case "severity":
			p.next()
			n, err := p.expr()
			if err != nil {
				return nil, err
			}
			if prop.severity != nil {
				return nil, errAt(t, "property %s: duplicate severity", prop.Name)
			}
			prop.severity = n
		default:
			return nil, errAt(t, "unknown clause %q", t.text)
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
	}
	if prop.condition == nil {
		return nil, errAt(nameTok, "property %s: missing condition", prop.Name)
	}
	if prop.severity == nil {
		// Default, per ASL convention: the severity accompanies the
		// property; absent a formula, a holding property has severity 1.
		prop.severity = numLit(1)
	}
	return prop, nil
}

// expr → orExpr
func (p *parser) expr() (node, error) { return p.orExpr() }

func (p *parser) orExpr() (node, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPunct && p.cur().text == "||" {
		p.next()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &binary{"||", l, r}
	}
	return l, nil
}

func (p *parser) andExpr() (node, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPunct && p.cur().text == "&&" {
		p.next()
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = &binary{"&&", l, r}
	}
	return l, nil
}

func (p *parser) cmpExpr() (node, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind == tokPunct {
		switch t.text {
		case "<", "<=", ">", ">=", "==", "!=":
			p.next()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return &binary{t.text, l, r}, nil
		}
	}
	return l, nil
}

func (p *parser) addExpr() (node, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPunct && (p.cur().text == "+" || p.cur().text == "-") {
		op := p.next().text
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &binary{op, l, r}
	}
	return l, nil
}

func (p *parser) mulExpr() (node, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPunct && (p.cur().text == "*" || p.cur().text == "/") {
		op := p.next().text
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = &binary{op, l, r}
	}
	return l, nil
}

func (p *parser) unaryExpr() (node, error) {
	t := p.cur()
	if t.kind == tokPunct && (t.text == "-" || t.text == "!") {
		p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &unary{t.text, x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (node, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, errAt(t, "bad number %q", t.text)
		}
		return numLit(f), nil
	case tokString:
		return strLit(t.text), nil
	case tokIdent:
		if p.cur().kind == tokPunct && p.cur().text == "(" {
			p.next()
			var args []node
			if !(p.cur().kind == tokPunct && p.cur().text == ")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.cur().kind == tokPunct && p.cur().text == "," {
						p.next()
						continue
					}
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return &call{name: t.text, args: args}, nil
		}
		if p.identOK {
			return &ident{name: t.text, tok: t}, nil
		}
		return nil, errAt(t, "bare identifier %q (did you mean %s(...)?)", t.text, t.text)
	case tokPunct:
		if t.text == "(" {
			n, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return n, nil
		}
	case tokEOF:
		return nil, errAt(t, "unexpected end of input")
	}
	return nil, errAt(t, "unexpected token %q", t.text)
}
