package asl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Lexer -------------------------------------------------------------------

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // operators and delimiters
)

type token struct {
	kind tokKind
	text string
	pos  int // byte offset for error messages
	line int
}

// punctuation tokens, longest first so ">=" wins over ">".
var puncts = []string{
	"&&", "||", "<=", ">=", "==", "!=",
	"{", "}", "(", ")", ";", ",", "+", "-", "*", "/", "<", ">", "!",
}

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#' || (c == '/' && i+1 < len(src) && src[i+1] == '/'):
			// Comment to end of line.
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' {
				if src[j] == '\n' {
					return nil, fmt.Errorf("asl: line %d: unterminated string", line)
				}
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("asl: line %d: unterminated string", line)
			}
			toks = append(toks, token{tokString, src[i+1 : j], i, line})
			i = j + 1
		case unicode.IsDigit(rune(c)) || (c == '.' && i+1 < len(src) && unicode.IsDigit(rune(src[i+1]))):
			j := i
			for j < len(src) && (unicode.IsDigit(rune(src[j])) || src[j] == '.' ||
				src[j] == 'e' || src[j] == 'E' ||
				((src[j] == '+' || src[j] == '-') && j > i && (src[j-1] == 'e' || src[j-1] == 'E'))) {
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j], i, line})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], i, line})
			i = j
		default:
			matched := false
			for _, p := range puncts {
				if strings.HasPrefix(src[i:], p) {
					toks = append(toks, token{tokPunct, p, i, line})
					i += len(p)
					matched = true
					break
				}
			}
			if !matched {
				return nil, fmt.Errorf("asl: line %d: unexpected character %q", line, c)
			}
		}
	}
	toks = append(toks, token{tokEOF, "", len(src), line})
	return toks, nil
}

// AST ----------------------------------------------------------------------

type node interface {
	eval(m *Metrics) (value, error)
}

type numLit float64

func (n numLit) eval(*Metrics) (value, error) { return num(float64(n)), nil }

type strLit string

func (s strLit) eval(*Metrics) (value, error) { return strV(string(s)), nil }

type call struct {
	name string
	args []node
}

func (c *call) eval(m *Metrics) (value, error) {
	args := make([]value, len(c.args))
	for i, a := range c.args {
		v, err := a.eval(m)
		if err != nil {
			return value{}, err
		}
		args[i] = v
	}
	return m.call(c.name, args)
}

type unary struct {
	op string
	x  node
}

func (u *unary) eval(m *Metrics) (value, error) {
	v, err := u.x.eval(m)
	if err != nil {
		return value{}, err
	}
	switch u.op {
	case "-":
		if !v.isNum {
			return value{}, fmt.Errorf("asl: unary '-' on %s", v.kind())
		}
		return num(-v.f), nil
	case "!":
		if v.isNum || v.isStr {
			return value{}, fmt.Errorf("asl: '!' on %s", v.kind())
		}
		return boolV(!v.b), nil
	default:
		return value{}, fmt.Errorf("asl: unknown unary operator %q", u.op)
	}
}

type binary struct {
	op   string
	l, r node
}

func (b *binary) eval(m *Metrics) (value, error) {
	lv, err := b.l.eval(m)
	if err != nil {
		return value{}, err
	}
	// Short-circuit logical operators.
	if b.op == "&&" || b.op == "||" {
		if lv.isNum || lv.isStr {
			return value{}, fmt.Errorf("asl: %q on %s", b.op, lv.kind())
		}
		if b.op == "&&" && !lv.b {
			return boolV(false), nil
		}
		if b.op == "||" && lv.b {
			return boolV(true), nil
		}
		rv, err := b.r.eval(m)
		if err != nil {
			return value{}, err
		}
		if rv.isNum || rv.isStr {
			return value{}, fmt.Errorf("asl: %q on %s", b.op, rv.kind())
		}
		return boolV(rv.b), nil
	}
	rv, err := b.r.eval(m)
	if err != nil {
		return value{}, err
	}
	if !lv.isNum || !rv.isNum {
		return value{}, fmt.Errorf("asl: %q needs numeric operands, got %s and %s",
			b.op, lv.kind(), rv.kind())
	}
	switch b.op {
	case "+":
		return num(lv.f + rv.f), nil
	case "-":
		return num(lv.f - rv.f), nil
	case "*":
		return num(lv.f * rv.f), nil
	case "/":
		if rv.f == 0 {
			return num(0), nil // total-time denominators may be zero on empty traces
		}
		return num(lv.f / rv.f), nil
	case "<":
		return boolV(lv.f < rv.f), nil
	case "<=":
		return boolV(lv.f <= rv.f), nil
	case ">":
		return boolV(lv.f > rv.f), nil
	case ">=":
		return boolV(lv.f >= rv.f), nil
	case "==":
		return boolV(lv.f == rv.f), nil
	case "!=":
		return boolV(lv.f != rv.f), nil
	default:
		return value{}, fmt.Errorf("asl: unknown operator %q", b.op)
	}
}

// Parser --------------------------------------------------------------------

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) expectPunct(s string) error {
	t := p.next()
	if t.kind != tokPunct || t.text != s {
		return fmt.Errorf("asl: line %d: expected %q, got %q", t.line, s, t.text)
	}
	return nil
}

func (p *parser) expectIdent(s string) error {
	t := p.next()
	if t.kind != tokIdent || t.text != s {
		return fmt.Errorf("asl: line %d: expected %q, got %q", t.line, s, t.text)
	}
	return nil
}

// Parse parses a sequence of property definitions.
func Parse(src string) ([]*Property, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var props []*Property
	seen := map[string]bool{}
	for p.cur().kind != tokEOF {
		prop, err := p.property()
		if err != nil {
			return nil, err
		}
		if seen[prop.Name] {
			return nil, fmt.Errorf("asl: duplicate property %q", prop.Name)
		}
		seen[prop.Name] = true
		props = append(props, prop)
	}
	if len(props) == 0 {
		return nil, fmt.Errorf("asl: no property definitions found")
	}
	return props, nil
}

func (p *parser) property() (*Property, error) {
	if err := p.expectIdent("property"); err != nil {
		return nil, err
	}
	nameTok := p.next()
	if nameTok.kind != tokIdent {
		return nil, fmt.Errorf("asl: line %d: expected property name, got %q", nameTok.line, nameTok.text)
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	prop := &Property{Name: nameTok.text}
	for {
		t := p.cur()
		if t.kind == tokPunct && t.text == "}" {
			p.next()
			break
		}
		if t.kind != tokIdent {
			return nil, fmt.Errorf("asl: line %d: expected clause, got %q", t.line, t.text)
		}
		switch t.text {
		case "condition":
			p.next()
			n, err := p.expr()
			if err != nil {
				return nil, err
			}
			if prop.condition != nil {
				return nil, fmt.Errorf("asl: property %s: duplicate condition", prop.Name)
			}
			prop.condition = n
		case "severity":
			p.next()
			n, err := p.expr()
			if err != nil {
				return nil, err
			}
			if prop.severity != nil {
				return nil, fmt.Errorf("asl: property %s: duplicate severity", prop.Name)
			}
			prop.severity = n
		default:
			return nil, fmt.Errorf("asl: line %d: unknown clause %q", t.line, t.text)
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
	}
	if prop.condition == nil {
		return nil, fmt.Errorf("asl: property %s: missing condition", prop.Name)
	}
	if prop.severity == nil {
		// Default, per ASL convention: the severity accompanies the
		// property; absent a formula, a holding property has severity 1.
		prop.severity = numLit(1)
	}
	return prop, nil
}

// expr → orExpr
func (p *parser) expr() (node, error) { return p.orExpr() }

func (p *parser) orExpr() (node, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPunct && p.cur().text == "||" {
		p.next()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &binary{"||", l, r}
	}
	return l, nil
}

func (p *parser) andExpr() (node, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPunct && p.cur().text == "&&" {
		p.next()
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = &binary{"&&", l, r}
	}
	return l, nil
}

func (p *parser) cmpExpr() (node, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind == tokPunct {
		switch t.text {
		case "<", "<=", ">", ">=", "==", "!=":
			p.next()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return &binary{t.text, l, r}, nil
		}
	}
	return l, nil
}

func (p *parser) addExpr() (node, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPunct && (p.cur().text == "+" || p.cur().text == "-") {
		op := p.next().text
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &binary{op, l, r}
	}
	return l, nil
}

func (p *parser) mulExpr() (node, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPunct && (p.cur().text == "*" || p.cur().text == "/") {
		op := p.next().text
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = &binary{op, l, r}
	}
	return l, nil
}

func (p *parser) unaryExpr() (node, error) {
	t := p.cur()
	if t.kind == tokPunct && (t.text == "-" || t.text == "!") {
		p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &unary{t.text, x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (node, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("asl: line %d: bad number %q", t.line, t.text)
		}
		return numLit(f), nil
	case tokString:
		return strLit(t.text), nil
	case tokIdent:
		if p.cur().kind == tokPunct && p.cur().text == "(" {
			p.next()
			var args []node
			if !(p.cur().kind == tokPunct && p.cur().text == ")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.cur().kind == tokPunct && p.cur().text == "," {
						p.next()
						continue
					}
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return &call{name: t.text, args: args}, nil
		}
		return nil, fmt.Errorf("asl: line %d: bare identifier %q (did you mean %s(...)?)", t.line, t.text, t.text)
	case tokPunct:
		if t.text == "(" {
			n, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return n, nil
		}
	}
	return nil, fmt.Errorf("asl: line %d: unexpected token %q", t.line, t.text)
}
