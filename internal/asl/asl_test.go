package asl

import (
	"math"
	"os"
	"strings"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/core"
	"repro/internal/mpi"
)

// lateSenderReport produces a report with a known late-sender wait.
func lateSenderReport(t *testing.T) *analyzer.Report {
	t.Helper()
	tr, err := mpi.Run(mpi.Options{Procs: 4}, func(c *mpi.Comm) {
		core.LateSender(c, 0.01, 0.05, 5)
	})
	if err != nil {
		t.Fatal(err)
	}
	return analyzer.Analyze(tr, analyzer.Options{})
}

func TestParseAndEvalBasicProperty(t *testing.T) {
	rep := lateSenderReport(t)
	src := `
	// ASL-style restatement of the late sender property.
	property dominant_late_sender {
	    condition severity("late_sender") > 0.05 &&
	              wait("late_sender") > 2 * wait("late_receiver");
	    severity  severity("late_sender");
	}
	`
	fs, err := EvalAll(src, rep)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 {
		t.Fatalf("findings = %d", len(fs))
	}
	f := fs[0]
	if !f.Holds {
		t.Error("property does not hold on a late-sender trace")
	}
	if math.Abs(f.Severity-rep.Severity(analyzer.PropLateSender)) > 1e-12 {
		t.Errorf("severity %v != report severity %v", f.Severity, rep.Severity(analyzer.PropLateSender))
	}
}

func TestConditionFalseOnCleanTrace(t *testing.T) {
	tr, err := mpi.Run(mpi.Options{Procs: 4}, func(c *mpi.Comm) {
		core.NegativeBalancedMPI(c, 0.02, 5)
	})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := EvalTrace(`property ls { condition severity("late_sender") > 0.01; }`, tr)
	if err != nil {
		t.Fatal(err)
	}
	if fs[0].Holds {
		t.Error("late-sender property holds on a balanced trace")
	}
	// Default severity is 1 per the ASL convention, reported regardless.
	if fs[0].Severity != 1 {
		t.Errorf("default severity = %v", fs[0].Severity)
	}
}

func TestMetricFunctions(t *testing.T) {
	rep := lateSenderReport(t)
	cases := []struct {
		expr string
		want bool
	}{
		{`total_time() > 0`, true},
		{`duration() > 0 && duration() <= total_time()`, true},
		{`locations() == 4`, true},
		{`region_count("MPI_Recv") == 10`, true}, // 2 receivers × 5 reps
		{`region_time("MPI_Recv") > 0.4`, true},  // ≈ 2×5×0.05 of waiting
		{`instances("late_sender") == 10`, true},
		{`wait("no_such_property") == 0`, true},
		{`region_time("no_such_region") == 0`, true},
		{`!(severity("late_sender") < 0.01)`, true},
		{`1 + 2 * 3 == 7`, true},
		{`(1 + 2) * 3 == 9`, true},
		{`-2 < -1`, true},
		{`4 / 2 == 2 && 1 != 2`, true},
		{`severity("late_sender") >= 1`, false},
	}
	m := FromReport(rep)
	for _, tc := range cases {
		props, err := Parse("property p { condition " + tc.expr + "; }")
		if err != nil {
			t.Fatalf("%s: %v", tc.expr, err)
		}
		f, err := props[0].Eval(m)
		if err != nil {
			t.Fatalf("%s: %v", tc.expr, err)
		}
		if f.Holds != tc.want {
			t.Errorf("%s = %v, want %v", tc.expr, f.Holds, tc.want)
		}
	}
}

func TestMultipleProperties(t *testing.T) {
	rep := lateSenderReport(t)
	src := `
	property a { condition wait("late_sender") > 0; severity 0.5; }
	property b { condition wait("late_receiver") > 0; severity 0.25; }
	`
	fs, err := EvalAll(src, rep)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 {
		t.Fatalf("findings = %d", len(fs))
	}
	if !fs[0].Holds || fs[0].Severity != 0.5 {
		t.Errorf("a = %+v", fs[0])
	}
	if fs[1].Holds {
		t.Errorf("b holds without late receivers")
	}
}

func TestShortCircuit(t *testing.T) {
	rep := lateSenderReport(t)
	// The right-hand side would error (bad function), but must not be
	// evaluated.
	src := `property p { condition 1 > 0 || bogus("x") > 0; }`
	fs, err := EvalAll(src, rep)
	if err != nil {
		t.Fatal(err)
	}
	if !fs[0].Holds {
		t.Error("short-circuit || failed")
	}
	src = `property p { condition 1 > 2 && bogus("x") > 0; }`
	fs, err = EvalAll(src, rep)
	if err != nil {
		t.Fatal(err)
	}
	if fs[0].Holds {
		t.Error("short-circuit && failed")
	}
}

func TestDivisionByZeroYieldsZero(t *testing.T) {
	rep := lateSenderReport(t)
	fs, err := EvalAll(`property p { condition 1 / 0 == 0; }`, rep)
	if err != nil {
		t.Fatal(err)
	}
	if !fs[0].Holds {
		t.Error("division by zero should evaluate to 0")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,                               // empty
		`property`,                       // truncated
		`property p { }`,                 // missing condition
		`property p { condition 1 > 0 }`, // missing semicolon
		`property p { condition 1 > 0; bogus 1; }`,                        // unknown clause
		`property p { condition "str"; }`,                                 // non-boolean condition is an eval error, but parse passes — tested below
		`property p { condition 1 > 0; } property p { condition 1 > 0; }`, // duplicate
		`property p { condition wait(; }`,                                 // malformed call
		`property p { condition wait("x" ; }`,                             // unclosed call
		`property p { condition name; }`,                                  // bare identifier
		`property p { condition 1 @ 2; }`,                                 // bad character
		`property p { condition "unterminated; }`,                         // unterminated string
		`property p { condition 1 > 0; condition 1 > 0; }`,                // duplicate clause
	}
	for _, src := range bad {
		if src == `property p { condition "str"; }` {
			continue
		}
		if _, err := Parse(src); err == nil {
			t.Errorf("parse accepted %q", src)
		}
	}
}

func TestEvalTypeErrors(t *testing.T) {
	rep := lateSenderReport(t)
	bad := []string{
		`property p { condition "str"; }`,                 // string condition
		`property p { condition 5; }`,                     // numeric condition
		`property p { condition 1 > 0; severity 1 > 0; }`, // boolean severity
		`property p { condition -( 1 > 0 ) == 1; }`,       // unary minus on bool
		`property p { condition !(1) ; }`,                 // ! on number
		`property p { condition (1 > 0) + 1 == 1; }`,      // bool arithmetic
		`property p { condition wait(1) > 0; }`,           // non-string arg
		`property p { condition total_time("x") > 0; }`,   // spurious arg
		`property p { condition bogus("x") > 0; }`,        // unknown function
		`property p { condition (1 > 0) && 3; }`,          // number in &&
	}
	for _, src := range bad {
		fs, err := EvalAll(src, rep)
		if err == nil {
			t.Errorf("eval accepted %q -> %+v", src, fs)
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := `
	# hash comment
	// slash comment
	property   spaced   {
	    condition    total_time()>0   ;   # trailing comment
	}
	`
	props, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if props[0].Name != "spaced" {
		t.Errorf("name = %q", props[0].Name)
	}
}

func TestScientificNumbers(t *testing.T) {
	rep := lateSenderReport(t)
	fs, err := EvalAll(`property p { condition 1.5e-3 < 2E-3 && 1e3 == 1000; }`, rep)
	if err != nil {
		t.Fatal(err)
	}
	if !fs[0].Holds {
		t.Error("scientific notation mis-evaluated")
	}
}

func TestUserCatalogAgainstCompositeProgram(t *testing.T) {
	// A user-style ASL catalog checked against the Fig 3.3 composite.
	tr, err := mpi.Run(mpi.Options{Procs: 8}, func(c *mpi.Comm) {
		core.CompositeAllMPI(c, core.DefaultComposite())
	})
	if err != nil {
		t.Fatal(err)
	}
	src := `
	property p2p_problems {
	    condition wait("late_sender") + wait("late_receiver") > 0.1;
	    severity  (wait("late_sender") + wait("late_receiver")) / total_time();
	}
	property collective_problems {
	    condition wait("late_broadcast") > 0 && wait("early_reduce") > 0;
	    severity  (wait("late_broadcast") + wait("early_reduce") + wait("wait_at_nxn")) / total_time();
	}
	property startup_dominates {
	    condition region_time("MPI_Init") / total_time() > 0.5;
	    severity  region_time("MPI_Init") / total_time();
	}
	`
	fs, err := EvalTrace(src, tr)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Finding{}
	for _, f := range fs {
		byName[f.Name] = f
	}
	if !byName["p2p_problems"].Holds {
		t.Error("p2p_problems should hold on the composite")
	}
	if !byName["collective_problems"].Holds {
		t.Error("collective_problems should hold on the composite")
	}
	if byName["startup_dominates"].Holds {
		t.Error("startup should not dominate the composite")
	}
	if s := byName["collective_problems"].Severity; s <= 0 || s >= 1 {
		t.Errorf("collective severity = %v", s)
	}
}

func TestParseErrorMessagesMentionLine(t *testing.T) {
	_, err := Parse("property p {\n  condition 1 @@ 2;\n}")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error %v lacks line info", err)
	}
}

func TestMessageStatFunctions(t *testing.T) {
	rep := lateSenderReport(t)
	// 2 sender pairs × 5 reps = 10 messages of 2048 bytes (256 doubles).
	cases := []struct {
		expr string
		want bool
	}{
		{`msg_count() == 10`, true},
		{`msg_bytes() == 10 * 2048`, true},
		{`msg_avg_bytes() == 2048`, true},
		{`msg_rate() > 0`, true},
	}
	m := FromReport(rep)
	for _, tc := range cases {
		props, err := Parse("property p { condition " + tc.expr + "; }")
		if err != nil {
			t.Fatalf("%s: %v", tc.expr, err)
		}
		f, err := props[0].Eval(m)
		if err != nil {
			t.Fatalf("%s: %v", tc.expr, err)
		}
		if f.Holds != tc.want {
			t.Errorf("%s = %v, want %v", tc.expr, f.Holds, tc.want)
		}
	}
}

func TestMetricFuncsAllEvaluate(t *testing.T) {
	// Every name exported in MetricFuncs must be callable; the list is
	// what doc/ASL.md is drift-checked against.
	rep := lateSenderReport(t)
	m := FromReport(rep)
	takesString := map[string]bool{
		"wait": true, "severity": true, "instances": true,
		"region_time": true, "region_count": true,
	}
	for _, name := range MetricFuncs {
		arg := "()"
		if takesString[name] {
			arg = `("late_sender")`
		}
		props, err := Parse("property p { condition " + name + arg + " >= 0; }")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := props[0].Eval(m); err != nil {
			t.Errorf("%s does not evaluate: %v", name, err)
		}
	}
}

func TestGrindstoneDiagnosisInASL(t *testing.T) {
	// The small-message flood diagnosis, written as an ASL property.
	tr, err := mpi.Run(mpi.Options{Procs: 4}, func(c *mpi.Comm) {
		c.Begin("flood")
		buf := mpi.AllocBuf(mpi.TypeInt, 1)
		if c.Rank() == 0 {
			for i := 0; i < 60; i++ {
				c.Recv(buf, mpi.AnySource, 1)
			}
		} else {
			for i := 0; i < 20; i++ {
				c.Send(buf, 0, 1)
			}
		}
		c.End()
	})
	if err != nil {
		t.Fatal(err)
	}
	src := `
	property latency_bound_messaging {
	    condition msg_count() > 50 && msg_avg_bytes() < 64;
	    severity  region_time("MPI_Recv") / total_time();
	}
	`
	fs, err := EvalTrace(src, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !fs[0].Holds {
		t.Error("latency-bound messaging not diagnosed")
	}
}

func TestShippedExampleCatalogParses(t *testing.T) {
	src, err := os.ReadFile("../../examples/catalog.asl")
	if err != nil {
		t.Fatal(err)
	}
	props, err := Parse(string(src))
	if err != nil {
		t.Fatalf("shipped catalog does not parse: %v", err)
	}
	if len(props) < 5 {
		t.Errorf("catalog has only %d properties", len(props))
	}
	// It must evaluate cleanly against a real report.
	rep := lateSenderReport(t)
	fs, err := EvalAll(string(src), rep)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Finding{}
	for _, f := range fs {
		byName[f.Name] = f
	}
	if !byName["dominant_p2p_waiting"].Holds {
		t.Error("dominant_p2p_waiting should hold on a late-sender trace")
	}
	if byName["omp_thread_waiting"].Holds {
		t.Error("omp_thread_waiting should not hold on an MPI-only trace")
	}
}
