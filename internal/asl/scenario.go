// Scenario definitions: the property-*defining* half of the ASL subset.
//
// A `property` declaration (asl.go) evaluates metrics of an existing
// analysis report.  A `scenario` declaration goes the other way: it
// *defines* a new synthetic performance property — an injection pattern
// built from a fixed vocabulary of trace-shaping primitives, a closed-form
// severity expression over the scenario's parameters, and a localization
// claim — and compiles into a core.Spec registration indistinguishable
// from the built-in property functions.  Registered scenarios flow through
// the program generator, the parameter sweeps, the conformance oracle and
// the fuzzer without any of those layers knowing the property was defined
// in ASL rather than Go.  doc/ASL.md is the normative reference.

package asl

import (
	"fmt"
	"math"
	"os"
	"strconv"

	"repro/internal/analyzer"
	"repro/internal/core"
	"repro/internal/distr"
	"repro/internal/mpi"
)

// ScenarioParam is one declared scenario parameter.
type ScenarioParam struct {
	Name string
	Kind string // "float", "int", "rank" or "distr"
	Help string

	DefFloat float64
	DefInt   int
	DefDistr core.DistrSpec

	// Fuzz range from an `in [lo, hi]` clause; absent a clause the
	// core-style defaults apply (float: def/10..def*2, int: 1..def).
	MinFloat, MaxFloat float64
	MinInt, MaxInt     int
	hasRange           bool
}

// injectStmt is one `inject primitive(args...)` statement.
type injectStmt struct {
	prim *primitive
	name string
	args []node
	tok  token
}

// Scenario is one parsed and compiled scenario definition.
type Scenario struct {
	Name string
	Help string
	// Detects is the analyzer property the scenario's severity closed form
	// claims (defaults to the first primitive's detection).
	Detects string
	// Localize is the claimed localization region: the trace region the
	// detected wait must be attributed under.  It defaults to the scenario
	// name; a distinct name adds a nested region inside the scenario's own.
	Localize string
	// Companions are analyzer properties legitimately co-produced by
	// secondary primitives (negative-axis allowances, cf. core.Spec).
	Companions []string
	Params     []ScenarioParam
	// Src is the scenario's own source text (for re-registration in
	// generated programs).
	Src string

	injects  []injectStmt
	severity node
	nameTok  token
	spec     *core.Spec
}

// Spec returns the compiled core registration of the scenario.
func (sc *Scenario) Spec() *core.Spec { return sc.spec }

// Injection primitives ------------------------------------------------------

type primKind uint8

const (
	primFloat primKind = iota
	primInt
	primDistr
)

func (k primKind) String() string {
	switch k {
	case primFloat:
		return "float"
	case primInt:
		return "int"
	default:
		return "distr"
	}
}

// primArg declares one positional parameter of a primitive.
type primArg struct {
	name string
	kind primKind
	help string
}

// primVal is one evaluated primitive argument.
type primVal struct {
	f  float64
	i  int
	ds core.DistrSpec
}

// primitive is one entry of the fixed trace-shaping vocabulary.
type primitive struct {
	name string
	// detects is the analyzer property the primitive injects ("" for
	// shape-only primitives like ramp_send that induce no waiting).
	detects string
	help    string
	params  []primArg
	run     func(c *mpi.Comm, args []primVal)
}

// Primitives returns the injection vocabulary sorted by name — the single
// source doc/ASL.md's primitive table is drift-checked against.
func Primitives() []PrimitiveInfo {
	out := make([]PrimitiveInfo, 0, len(primitives))
	for _, name := range primitiveOrder {
		p := primitives[name]
		sig := make([]string, len(p.params))
		for i, a := range p.params {
			sig[i] = a.name + " " + a.kind.String()
		}
		out = append(out, PrimitiveInfo{
			Name: p.name, Detects: p.detects, Help: p.help, Params: sig,
		})
	}
	return out
}

// PrimitiveInfo describes one injection primitive for documentation and
// introspection.
type PrimitiveInfo struct {
	Name    string
	Detects string // analyzer property; "" if none
	Help    string
	Params  []string // "name kind" per positional parameter
}

var primitiveOrder = []string{"delayed_send", "imbalanced_work", "ramp_send", "skewed_barrier"}

var primitives = map[string]*primitive{
	"delayed_send": {
		name:    "delayed_send",
		detects: analyzer.PropLateSender,
		help:    "even ranks work base+extra then send, odd ranks work base then receive: every receive blocks extra seconds",
		params: []primArg{
			{"base", primFloat, "base work per iteration [s]"},
			{"extra", primFloat, "extra work of the sending (even) ranks [s]"},
			{"r", primInt, "repetitions"},
		},
		run: func(c *mpi.Comm, args []primVal) {
			base, extra, r := args[0].f, args[1].f, args[2].i
			buf := c.BaseBuf()
			defer mpi.FreeBuf(buf)
			dd := distr.Val2{Low: base + extra, High: base}
			for i := 0; i < r; i++ {
				c.DoWork(distr.Cyclic2, dd, 1.0)
				mpi.PatternSendRecv(c, buf, mpi.DirUp, mpi.PatternOpts{})
			}
		},
	},
	"skewed_barrier": {
		name:    "skewed_barrier",
		detects: analyzer.PropWaitAtBarrier,
		help:    "distribution-driven work skew in front of MPI_Barrier",
		params: []primArg{
			{"work", primDistr, "per-rank work distribution [s]"},
			{"r", primInt, "repetitions"},
		},
		run: func(c *mpi.Comm, args []primVal) {
			df, dd := resolveDistr(args[0].ds)
			r := args[1].i
			for i := 0; i < r; i++ {
				c.DoWork(df, dd, 1.0)
				c.Barrier()
			}
		},
	},
	"imbalanced_work": {
		name:    "imbalanced_work",
		detects: analyzer.PropWaitAtNxN,
		help:    "distribution-driven work skew in front of a synchronizing MPI_Allreduce",
		params: []primArg{
			{"work", primDistr, "per-rank work distribution [s]"},
			{"r", primInt, "repetitions"},
		},
		run: func(c *mpi.Comm, args []primVal) {
			df, dd := resolveDistr(args[0].ds)
			r := args[1].i
			sbuf := c.BaseBuf()
			rbuf := c.BaseBuf()
			defer mpi.FreeBuf(sbuf)
			defer mpi.FreeBuf(rbuf)
			for i := 0; i < r; i++ {
				c.DoWork(df, dd, 1.0)
				c.Allreduce(sbuf, rbuf, mpi.OpSum)
			}
		},
	},
	"ramp_send": {
		name:    "ramp_send",
		detects: "",
		help:    "balanced even-odd exchange with linearly growing message sizes (shapes message statistics, induces no waiting)",
		params: []primArg{
			{"minbytes", primInt, "first message payload [bytes]"},
			{"maxbytes", primInt, "last message payload [bytes]"},
			{"r", primInt, "number of messages per pair"},
		},
		run: func(c *mpi.Comm, args []primVal) {
			minb, maxb, r := args[0].i, args[1].i, args[2].i
			if minb < 1 {
				minb = 1
			}
			if maxb < minb {
				maxb = minb
			}
			for i := 0; i < r; i++ {
				sz := minb
				if r > 1 {
					sz += (maxb - minb) * i / (r - 1)
				}
				buf := mpi.AllocBuf(mpi.TypeByte, sz)
				mpi.PatternSendRecv(c, buf, mpi.DirUp, mpi.PatternOpts{})
				mpi.FreeBuf(buf)
			}
		},
	},
}

func resolveDistr(ds core.DistrSpec) (distr.Func, distr.Desc) {
	df, dd, err := ds.Resolve()
	if err != nil {
		// compile() resolved the default and run-time specs come from
		// validated cases; reaching this is a harness bug.
		panic(fmt.Sprintf("asl: unresolvable distribution %q: %v", ds.Name, err))
	}
	return df, dd
}

// Scenario parsing ----------------------------------------------------------

// scenario parses one scenario definition (the `scenario` keyword is the
// current token).  Semantic validation happens in compile().
func (p *parser) scenario() (*Scenario, error) {
	startTok := p.next() // the "scenario" keyword
	nameTok := p.next()
	if nameTok.kind != tokIdent {
		return nil, errAt(nameTok, "expected scenario name, got %s", tokDesc(nameTok))
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	sc := &Scenario{Name: nameTok.text, nameTok: nameTok}
	p.identOK = true
	defer func() { p.identOK = false }()
	for {
		t := p.cur()
		if t.kind == tokPunct && t.text == "}" {
			end := p.next()
			sc.Src = p.src[startTok.pos : end.pos+1]
			break
		}
		if t.kind != tokIdent {
			return nil, errAt(t, "expected clause, got %s", tokDesc(t))
		}
		switch t.text {
		case "help":
			p.next()
			s := p.next()
			if s.kind != tokString {
				return nil, errAt(s, "help expects a string, got %s", tokDesc(s))
			}
			sc.Help = s.text
		case "param":
			p.next()
			sp, err := p.scenarioParam(sc)
			if err != nil {
				return nil, err
			}
			sc.Params = append(sc.Params, *sp)
		case "inject":
			p.next()
			inj, err := p.injectStmt()
			if err != nil {
				return nil, err
			}
			sc.injects = append(sc.injects, *inj)
		case "detects":
			p.next()
			s := p.next()
			if s.kind != tokString {
				return nil, errAt(s, "detects expects a string, got %s", tokDesc(s))
			}
			if sc.Detects != "" {
				return nil, errAt(t, "scenario %s: duplicate detects", sc.Name)
			}
			sc.Detects = s.text
		case "localize":
			p.next()
			s := p.next()
			if s.kind != tokString {
				return nil, errAt(s, "localize expects a string, got %s", tokDesc(s))
			}
			if sc.Localize != "" {
				return nil, errAt(t, "scenario %s: duplicate localize", sc.Name)
			}
			sc.Localize = s.text
		case "severity":
			p.next()
			n, err := p.expr()
			if err != nil {
				return nil, err
			}
			if sc.severity != nil {
				return nil, errAt(t, "scenario %s: duplicate severity", sc.Name)
			}
			sc.severity = n
		default:
			return nil, errAt(t, "unknown clause %q", t.text)
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
	}
	return sc, nil
}

// scenarioParam parses `param name kind = default [in [lo, hi]]` (the
// `param` keyword is consumed).
func (p *parser) scenarioParam(sc *Scenario) (*ScenarioParam, error) {
	nameTok := p.next()
	if nameTok.kind != tokIdent {
		return nil, errAt(nameTok, "expected parameter name, got %s", tokDesc(nameTok))
	}
	kindTok := p.next()
	if kindTok.kind != tokIdent {
		return nil, errAt(kindTok, "expected parameter kind, got %s", tokDesc(kindTok))
	}
	sp := &ScenarioParam{Name: nameTok.text, Kind: kindTok.text}
	switch kindTok.text {
	case "float", "int", "rank", "distr":
	default:
		return nil, errAt(kindTok, "unknown parameter kind %q (want float, int, rank or distr)", kindTok.text)
	}
	for _, prev := range sc.Params {
		if prev.Name == sp.Name {
			return nil, errAt(nameTok, "scenario %s: duplicate parameter %q", sc.Name, sp.Name)
		}
	}
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	switch sp.Kind {
	case "float":
		f, err := p.signedNumber()
		if err != nil {
			return nil, err
		}
		sp.DefFloat = f
	case "int", "rank":
		f, err := p.signedNumber()
		if err != nil {
			return nil, err
		}
		if f != math.Trunc(f) {
			return nil, errAt(nameTok, "parameter %q: %s default must be an integer", sp.Name, sp.Kind)
		}
		sp.DefInt = int(f)
	case "distr":
		ds, err := p.distrLiteral()
		if err != nil {
			return nil, err
		}
		sp.DefDistr = *ds
	}
	if t := p.cur(); t.kind == tokIdent && t.text == "in" {
		if sp.Kind == "distr" || sp.Kind == "rank" {
			return nil, errAt(t, "parameter %q: %s parameters take no range", sp.Name, sp.Kind)
		}
		p.next()
		if err := p.expectPunct("["); err != nil {
			return nil, err
		}
		lo, err := p.signedNumber()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		hi, err := p.signedNumber()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		if hi < lo {
			return nil, errAt(t, "parameter %q: range [%g, %g] is inverted", sp.Name, lo, hi)
		}
		sp.hasRange = true
		sp.MinFloat, sp.MaxFloat = lo, hi
		sp.MinInt, sp.MaxInt = int(lo), int(hi)
	}
	return sp, nil
}

// signedNumber parses a numeric literal with an optional leading minus.
func (p *parser) signedNumber() (float64, error) {
	neg := false
	if t := p.cur(); t.kind == tokPunct && t.text == "-" {
		p.next()
		neg = true
	}
	t := p.next()
	if t.kind != tokNumber {
		return 0, errAt(t, "expected number, got %s", tokDesc(t))
	}
	f, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, errAt(t, "bad number %q", t.text)
	}
	if neg {
		f = -f
	}
	return f, nil
}

// distrLiteral parses `name(low [, high [, med [, n]]])` into a DistrSpec.
func (p *parser) distrLiteral() (*core.DistrSpec, error) {
	nameTok := p.next()
	if nameTok.kind != tokIdent {
		return nil, errAt(nameTok, "expected distribution name, got %s", tokDesc(nameTok))
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var vals []float64
	for {
		f, err := p.signedNumber()
		if err != nil {
			return nil, err
		}
		vals = append(vals, f)
		if t := p.cur(); t.kind == tokPunct && t.text == "," {
			p.next()
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if len(vals) > 4 {
		return nil, errAt(nameTok, "distribution %q: at most 4 descriptor values (low, high, med, n)", nameTok.text)
	}
	ds := &core.DistrSpec{Name: nameTok.text}
	if len(vals) > 0 {
		ds.Low = vals[0]
	}
	if len(vals) > 1 {
		ds.High = vals[1]
	}
	if len(vals) > 2 {
		ds.Med = vals[2]
	}
	if len(vals) > 3 {
		ds.N = int(vals[3])
	}
	if _, _, err := ds.Resolve(); err != nil {
		return nil, errAt(nameTok, "%v", err)
	}
	return ds, nil
}

// injectStmt parses `primitive(arg, ...)` (the `inject` keyword is
// consumed).  Arguments are full expressions over scenario parameters.
func (p *parser) injectStmt() (*injectStmt, error) {
	nameTok := p.next()
	if nameTok.kind != tokIdent {
		return nil, errAt(nameTok, "expected primitive name, got %s", tokDesc(nameTok))
	}
	prim, ok := primitives[nameTok.text]
	if !ok {
		return nil, errAt(nameTok, "unknown primitive %q (want one of %v)", nameTok.text, primitiveOrder)
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	inj := &injectStmt{prim: prim, name: nameTok.text, tok: nameTok}
	if !(p.cur().kind == tokPunct && p.cur().text == ")") {
		for {
			a, err := p.expr()
			if err != nil {
				return nil, err
			}
			inj.args = append(inj.args, a)
			if p.cur().kind == tokPunct && p.cur().text == "," {
				p.next()
				continue
			}
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if len(inj.args) != len(prim.params) {
		return nil, errAt(nameTok, "primitive %s takes %d arguments, got %d",
			prim.name, len(prim.params), len(inj.args))
	}
	return inj, nil
}

// Compilation ---------------------------------------------------------------

// compile validates the scenario semantically and builds its core.Spec.
func (sc *Scenario) compile() error {
	if len(sc.injects) == 0 {
		return errAt(sc.nameTok, "scenario %s: missing inject", sc.Name)
	}
	if sc.severity == nil {
		return errAt(sc.nameTok, "scenario %s: missing severity (the closed-form expected wait)", sc.Name)
	}
	// Resolve the detection claim and the companion set.
	detections := map[string]bool{}
	for _, inj := range sc.injects {
		if inj.prim.detects != "" {
			detections[inj.prim.detects] = true
		}
		if sc.Detects == "" {
			sc.Detects = inj.prim.detects
		}
	}
	if sc.Detects == "" {
		return errAt(sc.nameTok, "scenario %s: no primitive injects a detectable property (declare detects or add one)", sc.Name)
	}
	if !detections[sc.Detects] {
		return errAt(sc.nameTok, "scenario %s: detects %q, but no primitive injects it", sc.Name, sc.Detects)
	}
	for _, inj := range sc.injects {
		if d := inj.prim.detects; d != "" && d != sc.Detects && !containsStr(sc.Companions, d) {
			sc.Companions = append(sc.Companions, d)
		}
	}
	if sc.Localize == "" {
		sc.Localize = sc.Name
	}

	// Type-check the inject arguments structurally: distr slots must be a
	// bare reference to a distr parameter.
	for _, inj := range sc.injects {
		for i, pa := range inj.prim.params {
			if pa.kind != primDistr {
				continue
			}
			id, ok := inj.args[i].(*ident)
			if !ok {
				return errAt(inj.tok, "primitive %s: argument %q must name a distr parameter", inj.name, pa.name)
			}
			if sp := sc.param(id.name); sp == nil || sp.Kind != "distr" {
				return errAt(id.tok, "primitive %s: %q is not a distr parameter", inj.name, id.name)
			}
		}
	}

	spec := &core.Spec{
		Name:       sc.Name,
		Paradigm:   core.ParadigmMPI,
		Help:       sc.Help,
		Companions: append([]string(nil), sc.Companions...),
		ASL:        sc.Src,
		Params:     make([]core.Param, 0, len(sc.Params)),
	}
	if spec.Help == "" {
		spec.Help = "ASL-defined scenario"
	}
	for _, sp := range sc.Params {
		spec.Params = append(spec.Params, sp.coreParam())
	}
	spec.Run = func(env core.Env, a core.Args) { sc.run(env, a) }
	spec.ExpectedWait = func(procs, threads int, a core.Args) float64 {
		e := &paramEnv{sc: sc, args: a, procs: procs, threads: threads}
		v, err := sc.severity.eval(e)
		if err != nil || !v.isNum || math.IsNaN(v.f) || math.IsInf(v.f, 0) {
			return -1
		}
		return v.f
	}

	// Trial evaluation against the defaults catches every remaining
	// semantic error (unknown parameter references, type mismatches,
	// unknown closed-form functions) at parse time rather than mid-run.
	trial := &paramEnv{sc: sc, args: spec.Defaults(), procs: 2, threads: 1}
	for _, inj := range sc.injects {
		if _, err := inj.evalArgs(trial); err != nil {
			return fmt.Errorf("%w (in scenario %s, inject %s at line %d:%d)",
				err, sc.Name, inj.name, inj.tok.line, inj.tok.col)
		}
	}
	if v, err := sc.severity.eval(trial); err != nil {
		return fmt.Errorf("%w (in scenario %s severity)", err, sc.Name)
	} else if !v.isNum {
		return errAt(sc.nameTok, "scenario %s: severity is not numeric", sc.Name)
	}
	sc.spec = spec
	return nil
}

func (sc *Scenario) param(name string) *ScenarioParam {
	for i := range sc.Params {
		if sc.Params[i].Name == name {
			return &sc.Params[i]
		}
	}
	return nil
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// coreParam maps the scenario parameter onto the registry's metadata,
// deriving the core-style fuzz range when no `in` clause was given.
func (sp ScenarioParam) coreParam() core.Param {
	cp := core.Param{Name: sp.Name, Help: sp.Help}
	if cp.Help == "" {
		cp.Help = "scenario parameter " + sp.Name
	}
	switch sp.Kind {
	case "float":
		cp.Kind = core.ParamFloat
		cp.DefFloat = sp.DefFloat
		if sp.hasRange {
			cp.MinFloat, cp.MaxFloat = sp.MinFloat, sp.MaxFloat
		} else {
			cp.MinFloat, cp.MaxFloat = sp.DefFloat/10, sp.DefFloat*2
		}
	case "int":
		cp.Kind = core.ParamInt
		cp.DefInt = sp.DefInt
		if sp.hasRange {
			cp.MinInt, cp.MaxInt = sp.MinInt, sp.MaxInt
		} else {
			cp.MinInt = 1
			cp.MaxInt = sp.DefInt
			if cp.MaxInt < 1 {
				cp.MaxInt = 1
			}
		}
	case "rank":
		cp.Kind = core.ParamInt
		cp.DefInt = sp.DefInt
		cp.Rank = true
	case "distr":
		cp.Kind = core.ParamDistr
		cp.DefDistr = sp.DefDistr
	}
	return cp
}

// run executes the scenario's injection sequence: the scenario's own trace
// region (its localization root), the declared localize region when it
// differs, then each primitive inside a region named after it.
func (sc *Scenario) run(env core.Env, a core.Args) {
	c := env.Comm
	c.Begin(sc.Name)
	defer c.End()
	if sc.Localize != sc.Name {
		c.Begin(sc.Localize)
		defer c.End()
	}
	e := &paramEnv{sc: sc, args: a, procs: c.Size(), threads: env.OMP.Threads}
	for _, inj := range sc.injects {
		vals, err := inj.evalArgs(e)
		if err != nil {
			// compile() trial-evaluated every expression; a failure here is
			// a harness bug and must fail loudly, not silently skew waits.
			panic(fmt.Sprintf("asl: scenario %s: %v", sc.Name, err))
		}
		c.Begin(inj.name)
		inj.prim.run(c, vals)
		c.End()
	}
}

// evalArgs evaluates the inject arguments against e, coercing each to its
// declared primitive slot.
func (inj *injectStmt) evalArgs(e *paramEnv) ([]primVal, error) {
	vals := make([]primVal, len(inj.args))
	for i, pa := range inj.prim.params {
		if pa.kind == primDistr {
			id := inj.args[i].(*ident) // structurally checked by compile
			vals[i] = primVal{ds: e.args.Distr[id.name]}
			continue
		}
		v, err := inj.args[i].eval(e)
		if err != nil {
			return nil, err
		}
		if !v.isNum {
			return nil, fmt.Errorf("asl: primitive %s: argument %q is %s, want number",
				inj.name, pa.name, v.kind())
		}
		switch pa.kind {
		case primFloat:
			vals[i] = primVal{f: v.f}
		case primInt:
			vals[i] = primVal{i: int(math.Round(v.f))}
		}
	}
	return vals, nil
}

// paramEnv -------------------------------------------------------------------

// paramEnv evaluates scenario expressions: identifiers resolve to the
// invocation's parameter values and calls dispatch to the closed-form
// helper functions (doc/ASL.md, "Closed-form helpers").
type paramEnv struct {
	sc      *Scenario
	args    core.Args
	procs   int
	threads int
}

func (e *paramEnv) lookup(name string) (value, error) {
	if v, ok := e.args.Float[name]; ok {
		return num(v), nil
	}
	if v, ok := e.args.Int[name]; ok {
		return num(float64(v)), nil
	}
	if _, ok := e.args.Distr[name]; ok {
		// Distr parameters evaluate to their own name so that
		// imbalance(work) can resolve the invocation's spec.
		return strV(name), nil
	}
	return value{}, fmt.Errorf("asl: scenario %s: unknown parameter %q", e.sc.Name, name)
}

// ParamFuncs lists the closed-form helper functions available in scenario
// expressions (severity, inject arguments) — the table doc/ASL.md is
// drift-checked against.
var ParamFuncs = []string{
	"abs", "ceil", "floor", "imbalance", "max", "min", "ranks", "sqrt", "threads",
}

func (e *paramEnv) call(name string, args []value) (value, error) {
	needNums := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("asl: %s expects %d argument(s), got %d", name, n, len(args))
		}
		for _, a := range args {
			if !a.isNum {
				return fmt.Errorf("asl: %s expects numeric arguments, got %s", name, a.kind())
			}
		}
		return nil
	}
	switch name {
	case "ranks":
		if len(args) != 0 {
			return value{}, fmt.Errorf("asl: ranks expects no arguments")
		}
		return num(float64(e.procs)), nil
	case "threads":
		if len(args) != 0 {
			return value{}, fmt.Errorf("asl: threads expects no arguments")
		}
		return num(float64(e.threads)), nil
	case "imbalance":
		if len(args) != 1 || !args[0].isStr {
			return value{}, fmt.Errorf("asl: imbalance expects one distr parameter")
		}
		ds, ok := e.args.Distr[args[0].s]
		if !ok {
			return value{}, fmt.Errorf("asl: imbalance: %q is not a distr parameter", args[0].s)
		}
		df, dd, err := ds.Resolve()
		if err != nil {
			return value{}, fmt.Errorf("asl: imbalance(%s): %w", args[0].s, err)
		}
		return num(distr.Imbalance(df, e.procs, 1.0, dd)), nil
	case "floor":
		if err := needNums(1); err != nil {
			return value{}, err
		}
		return num(math.Floor(args[0].f)), nil
	case "ceil":
		if err := needNums(1); err != nil {
			return value{}, err
		}
		return num(math.Ceil(args[0].f)), nil
	case "abs":
		if err := needNums(1); err != nil {
			return value{}, err
		}
		return num(math.Abs(args[0].f)), nil
	case "sqrt":
		if err := needNums(1); err != nil {
			return value{}, err
		}
		return num(math.Sqrt(args[0].f)), nil
	case "min":
		if err := needNums(2); err != nil {
			return value{}, err
		}
		return num(math.Min(args[0].f, args[1].f)), nil
	case "max":
		if err := needNums(2); err != nil {
			return value{}, err
		}
		return num(math.Max(args[0].f, args[1].f)), nil
	default:
		return value{}, fmt.Errorf("asl: unknown function %q in scenario expression", name)
	}
}

// Registration ---------------------------------------------------------------

// RegisterSource parses src, compiles every scenario in it and registers
// each with the core property registry and the analyzer's
// expected-detection table, opening them to the generator, the sweeps, the
// conformance oracle and the fuzzer.  It returns the registered names; on
// any error the registry is left exactly as before the call.
func RegisterSource(src string) ([]string, error) {
	f, err := ParseFile(src)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, sc := range f.Scenarios {
		if err := core.Register(sc.spec); err != nil {
			Unregister(names...)
			return nil, err
		}
		analyzer.ExpectedDetection[sc.Name] = sc.Detects
		names = append(names, sc.Name)
	}
	return names, nil
}

// RegisterFile reads an ASL file and registers its scenarios.
func RegisterFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	names, err := RegisterSource(string(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return names, nil
}

// Unregister removes scenarios previously registered by RegisterSource
// from the registry and the expected-detection table (test hygiene for
// dynamically extended registries).
func Unregister(names ...string) {
	for _, n := range names {
		core.Unregister(n)
		delete(analyzer.ExpectedDetection, n)
	}
}
