// Package asl implements a compact subset of the APART Specification
// Language.  The paper grounds the ATS in ASL: "During the first phase of
// the APART working group, ASL, a specification language for describing
// performance properties was developed [7].  A performance property
// characterizes a specific type of performance behavior … Performance
// properties have a severity associated with them" (§1).  The ATS
// property catalog is the ASL catalog made executable.
//
// This package closes the loop in the other direction: users can define
// *custom* performance properties as ASL-style declarations evaluated
// over the metrics of an analyzed trace, and check synthetic test
// programs against them.  The supported form is
//
//	property <name> {
//	    condition <boolean expression>;
//	    severity  <numeric expression>;
//	}
//
// with expressions over numbers, the usual arithmetic/comparison/logical
// operators, and the metric functions
//
//	wait("prop")          accumulated waiting seconds of a detected property
//	severity("prop")      its severity fraction
//	instances("prop")     its compound-event count
//	region_time("name")   aggregate inclusive seconds of a trace region
//	region_count("name")  aggregate visit count of a trace region
//	total_time()          total resource time (severity denominator)
//	duration()            trace wall span
//	locations()           number of execution locations
//	msg_count()           point-to-point messages sent
//	msg_bytes()           their total payload volume
//	msg_avg_bytes()       average message size
//	msg_rate()            messages per second of trace span
//
// Example — an ASL-style restatement of the late-sender property:
//
//	property dominant_late_sender {
//	    condition severity("late_sender") > 0.05 &&
//	              wait("late_sender") > 2 * wait("late_receiver");
//	    severity  severity("late_sender");
//	}
package asl

import (
	"fmt"
	"math"

	"repro/internal/analyzer"
	"repro/internal/trace"
)

// MetricFuncs lists the metric functions available in property
// expressions, in the order documented in doc/ASL.md.  The first five
// take one string argument; the rest take none.
var MetricFuncs = []string{
	"wait", "severity", "instances", "region_time", "region_count",
	"total_time", "duration", "locations",
	"msg_count", "msg_bytes", "msg_avg_bytes", "msg_rate",
}

// Metrics exposes the measurable quantities expressions may reference.
type Metrics struct {
	rep *analyzer.Report
}

// FromReport wraps an analysis report as an expression environment.
func FromReport(rep *analyzer.Report) *Metrics {
	return &Metrics{rep: rep}
}

// call evaluates a metric function.
func (m *Metrics) call(name string, args []value) (value, error) {
	needStr := func() (string, error) {
		if len(args) != 1 || !args[0].isStr {
			return "", fmt.Errorf("asl: %s expects one string argument", name)
		}
		return args[0].s, nil
	}
	needNone := func() error {
		if len(args) != 0 {
			return fmt.Errorf("asl: %s expects no arguments", name)
		}
		return nil
	}
	switch name {
	case "wait":
		s, err := needStr()
		if err != nil {
			return value{}, err
		}
		return num(m.rep.Wait(s)), nil
	case "severity":
		s, err := needStr()
		if err != nil {
			return value{}, err
		}
		return num(m.rep.Severity(s)), nil
	case "instances":
		s, err := needStr()
		if err != nil {
			return value{}, err
		}
		if r := m.rep.Get(s); r != nil {
			return num(float64(r.Instances)), nil
		}
		return num(0), nil
	case "region_time":
		s, err := needStr()
		if err != nil {
			return value{}, err
		}
		return num(m.rep.Stats.RegionInclusive(s)), nil
	case "region_count":
		s, err := needStr()
		if err != nil {
			return value{}, err
		}
		return num(float64(m.rep.Stats.RegionCount(s))), nil
	case "total_time":
		if err := needNone(); err != nil {
			return value{}, err
		}
		return num(m.rep.TotalTime), nil
	case "duration":
		if err := needNone(); err != nil {
			return value{}, err
		}
		return num(m.rep.Duration), nil
	case "locations":
		if err := needNone(); err != nil {
			return value{}, err
		}
		return num(float64(len(m.rep.Stats.PerLocation))), nil
	case "msg_count":
		if err := needNone(); err != nil {
			return value{}, err
		}
		return num(float64(m.rep.Messages.Count)), nil
	case "msg_bytes":
		if err := needNone(); err != nil {
			return value{}, err
		}
		return num(float64(m.rep.Messages.Bytes)), nil
	case "msg_avg_bytes":
		if err := needNone(); err != nil {
			return value{}, err
		}
		return num(m.rep.Messages.AvgBytes), nil
	case "msg_rate":
		if err := needNone(); err != nil {
			return value{}, err
		}
		return num(m.rep.Messages.Rate), nil
	default:
		return value{}, fmt.Errorf("asl: unknown function %q", name)
	}
}

// lookup rejects bare identifiers: property expressions reference metrics
// through calls only.  (Identifiers never parse in property context, so
// this is defense in depth for the evalEnv contract.)
func (m *Metrics) lookup(name string) (value, error) {
	return value{}, fmt.Errorf("asl: unknown identifier %q", name)
}

// value is a runtime value: a number, boolean, or string literal.
type value struct {
	f     float64
	b     bool
	s     string
	isStr bool
	isNum bool
}

func num(f float64) value { return value{f: f, isNum: true} }
func boolV(b bool) value  { return value{b: b} }
func strV(s string) value { return value{s: s, isStr: true} }
func (v value) kind() string {
	switch {
	case v.isStr:
		return "string"
	case v.isNum:
		return "number"
	default:
		return "boolean"
	}
}

// Property is one parsed ASL property definition.
type Property struct {
	Name      string
	condition node
	severity  node
	nameTok   token
}

// Finding is the evaluation result of one property.
type Finding struct {
	Name     string
	Holds    bool
	Severity float64
}

// Eval evaluates the property against the metrics.
func (p *Property) Eval(m *Metrics) (Finding, error) {
	f := Finding{Name: p.Name}
	cv, err := p.condition.eval(m)
	if err != nil {
		return f, fmt.Errorf("asl: property %s condition: %w", p.Name, err)
	}
	if cv.isNum || cv.isStr {
		return f, fmt.Errorf("asl: property %s condition is not boolean", p.Name)
	}
	f.Holds = cv.b
	sv, err := p.severity.eval(m)
	if err != nil {
		return f, fmt.Errorf("asl: property %s severity: %w", p.Name, err)
	}
	if !sv.isNum {
		return f, fmt.Errorf("asl: property %s severity is not numeric", p.Name)
	}
	f.Severity = sv.f
	if math.IsNaN(f.Severity) || math.IsInf(f.Severity, 0) {
		f.Severity = 0
	}
	return f, nil
}

// EvalAll parses src and evaluates every property over a report.
func EvalAll(src string, rep *analyzer.Report) ([]Finding, error) {
	props, err := Parse(src)
	if err != nil {
		return nil, err
	}
	m := FromReport(rep)
	out := make([]Finding, 0, len(props))
	for _, p := range props {
		f, err := p.Eval(m)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// EvalTrace analyzes tr and evaluates src against the result.
func EvalTrace(src string, tr *trace.Trace) ([]Finding, error) {
	return EvalAll(src, analyzer.Analyze(tr, analyzer.Options{}))
}
