package asl

import (
	"strings"
	"testing"
)

// parseNoPanic runs Parse and converts any panic into a test failure, so
// every malformed input in the table asserts "error, not panic".
func parseNoPanic(t *testing.T, src string) (props []*Property, err error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Parse(%q) panicked: %v", src, r)
		}
	}()
	return Parse(src)
}

// TestParseErrorPaths is the table-driven error-path suite for the ASL
// parser: each malformed property expression must produce a diagnostic
// containing the expected fragment.
func TestParseErrorPaths(t *testing.T) {
	tests := []struct {
		name    string
		src     string
		wantErr string
	}{
		{"empty input", ``, "no property definitions"},
		{"only comment", "# nothing here\n", "no property definitions"},
		{"wrong keyword", `prop p { condition 1 > 0; }`, `expected "property"`},
		{"numeric property name", `property 5 { condition 1 > 0; }`, "expected property name"},
		{"truncated after keyword", `property`, "expected property name"},
		{"missing open brace", `property p condition 1 > 0; }`, `expected "{"`},
		{"unclosed body", `property p { condition 1 > 0;`, "expected clause"},
		{"missing condition", `property p { severity 1; }`, "missing condition"},
		{"empty body", `property p { }`, "missing condition"},
		{"unknown clause", `property p { condition 1 > 0; bogus 1; }`, "unknown clause"},
		{"duplicate condition", `property p { condition 1 > 0; condition 2 > 1; }`, "duplicate condition"},
		{"duplicate severity", `property p { condition 1 > 0; severity 1; severity 2; }`, "duplicate severity"},
		{"duplicate property", `property p { condition 1 > 0; } property p { condition 1 > 0; }`, "duplicate property"},
		{"missing semicolon", `property p { condition 1 > 0 }`, `expected ";"`},
		{"missing operand", `property p { condition 1 +; }`, "unexpected token"},
		{"dangling unary", `property p { condition -; }`, "unexpected token"},
		{"bare identifier", `property p { condition waiting; }`, "bare identifier"},
		{"malformed call", `property p { condition wait(; }`, "unexpected token"},
		{"unclosed call", `property p { condition wait("x" ; }`, `expected ")"`},
		{"bad argument list", `property p { condition wait("x",; }`, "unexpected token"},
		{"unclosed paren", `property p { condition (1 > 0; }`, `expected ")"`},
		{"stray close paren", `property p { condition ); }`, "unexpected token"},
		{"bad exponent", `property p { condition 1e > 0; }`, "bad number"},
		{"double dot number", `property p { condition 1.2.3 > 0; }`, "bad number"},
		{"unexpected character", `property p { condition 1 @ 2; }`, "unexpected character"},
		{"unterminated string", `property p { condition "oops; }`, "unterminated string"},
		{"string with newline", "property p { condition \"oops\n\"; }", "unterminated string"},
		{"garbage after property", `property p { condition 1 > 0; } ;`, `expected "property"`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			props, err := parseNoPanic(t, tt.src)
			if err == nil {
				t.Fatalf("Parse(%q) accepted malformed input: %+v", tt.src, props)
			}
			if !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("Parse(%q) error %q does not contain %q", tt.src, err, tt.wantErr)
			}
		})
	}
}

// TestScenarioParseErrorPaths extends the error-path table to every
// construct of the scenario form: declarations, parameters, ranges,
// distribution literals, inject statements, and the compile-time
// consistency checks between clauses.
func TestScenarioParseErrorPaths(t *testing.T) {
	// body wraps clauses into an otherwise-complete scenario so each
	// case isolates exactly one defect.
	body := func(clauses string) string {
		return "scenario s {\n" + clauses + "\n}"
	}
	complete := `
    param extra float = 0.02;
    param r int = 2;
    inject delayed_send(0.004, extra, r);
    severity floor(ranks() / 2) * extra * r;`
	tests := []struct {
		name    string
		src     string
		wantErr string
	}{
		{"truncated after keyword", `scenario`, "expected scenario name"},
		{"numeric scenario name", `scenario 7 { }`, "expected scenario name"},
		{"missing open brace", `scenario s inject`, `expected "{"`},
		{"unclosed body", `scenario s { help "x";`, "expected clause"},
		{"unknown clause", body(`condition 1 > 0;` + complete), `unknown clause "condition"`},
		{"help not a string", body(`help 5;` + complete), "help expects a string"},
		{"detects not a string", body(complete + "\ndetects late_sender;"), "detects expects a string"},
		{"duplicate detects", body(complete + "\ndetects \"late_sender\"; detects \"late_sender\";"), "duplicate detects"},
		{"localize not a string", body(complete + "\nlocalize 3;"), "localize expects a string"},
		{"duplicate localize", body(complete + "\nlocalize \"a\"; localize \"b\";"), "duplicate localize"},
		{"duplicate severity", body(complete + "\nseverity 1;"), "duplicate severity"},
		{"missing param name", body(`param = 1;` + complete), "expected parameter name"},
		{"missing param kind", body(`param x = 1;` + complete), "expected parameter kind"},
		{"unknown param kind", body(`param x double = 1;` + complete), "unknown parameter kind"},
		{"duplicate param", body(`param extra float = 1; param extra float = 2;` + complete), `duplicate parameter "extra"`},
		{"int param float default", body(`param n int = 1.5; inject delayed_send(0.004, 0.02, n); severity 1;`), "default must be an integer"},
		{"range on rank param", body(`param root rank = 0 in [0, 3];` + complete), "parameters take no range"},
		{"range on distr param", body(`param d distr = block2(1, 2) in [1, 2];` + complete), "parameters take no range"},
		{"inverted range", body(`param x float = 2 in [3, 1];` + complete), "is inverted"},
		{"range missing bracket", body(`param x float = 2 in 1, 3];` + complete), `expected "["`},
		{"range bad number", body(`param x float = 2 in [lo, 3];` + complete), "expected number"},
		{"missing default", body(`param x float;` + complete), `expected "="`},
		{"unknown distribution", body(`param d distr = gaussian(1, 2);` + complete), "unknown distribution"},
		{"too many distr values", body(`param d distr = block2(1, 2, 3, 4, 5);` + complete), "at most 4 descriptor values"},
		{"missing inject", body(`param x float = 1;
    severity x;`), "missing inject"},
		{"missing severity", body(`inject delayed_send(0.004, 0.02, 2);`), "missing severity"},
		{"unknown primitive", body(`inject sleep(1); severity 1;`), `unknown primitive "sleep"`},
		{"wrong arity", body(`inject delayed_send(0.004); severity 1;`), "takes 3 arguments, got 1"},
		{"distr slot not ident", body(`inject skewed_barrier(block2(1, 2), 2); severity 1;`), "must name a distr parameter"},
		{"distr slot wrong kind", body(`param w float = 1; inject skewed_barrier(w, 2); severity 1;`), "is not a distr parameter"},
		{"detects nothing injected", body(`param lo float = 0.001; param hi float = 0.002;
    inject ramp_send(64, 256, 2);
    severity 1;`), "no primitive injects a detectable property"},
		{"detects mismatch", body(complete + "\ndetects \"wait_at_nxn\";"), "no primitive injects it"},
		{"unknown param in severity", body(`inject delayed_send(0.004, 0.02, 2); severity missing * 2;`), `unknown parameter "missing"`},
		{"unknown param in inject", body(`inject delayed_send(0.004, wrong, 2); severity 1;`), `unknown parameter "wrong"`},
		{"valid scenario accepted", body(`param x float = 1;` + complete + "\nlocalize \"l\";"), ""},
		{"duplicate scenario", `scenario s { inject delayed_send(0.004, 0.02, 2); severity 1; }
scenario s { inject delayed_send(0.004, 0.02, 2); severity 1; }`, "duplicate property"},
		{"scenario collides with property", `property s { condition 1 > 0; }
scenario s { inject delayed_send(0.004, 0.02, 2); severity 1; }`, "duplicate property"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var err error
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("ParseFile(%q) panicked: %v", tt.src, r)
					}
				}()
				_, err = ParseFile(tt.src)
			}()
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("valid input rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("ParseFile(%q) accepted malformed input", tt.src)
			}
			if !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("ParseFile(%q) error %q does not contain %q", tt.src, err, tt.wantErr)
			}
		})
	}
}

// TestParseErrorLineNumbers pins the line information in diagnostics.
func TestParseErrorLineNumbers(t *testing.T) {
	src := "property p {\n  condition 1 @ 2;\n}\n"
	_, err := parseNoPanic(t, src)
	if err == nil {
		t.Fatal("malformed input accepted")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error %q does not name line 2", err)
	}
}

// TestParseErrorExactPositions asserts that diagnostics point at the
// offending token — line AND column — not at the start of the enclosing
// statement.  The multi-line condition cases pin the historical bug
// where a bad token inside a continued expression was reported at the
// statement's first line.
func TestParseErrorExactPositions(t *testing.T) {
	tests := []struct {
		name string
		src  string
		pos  string // "line L:C" of the offending token
	}{
		{"bad char on later line",
			"property p {\n  condition 1 @ 2;\n}\n", "line 2:15"},
		{"multi-line expression, error on continuation line",
			"property p {\n  condition severity(\"x\") +\n    bogus_token;\n}\n", "line 3:5"},
		{"multi-line expression, dangling operator",
			"property p {\n  condition 1 +\n    2 +\n    ;\n}\n", "line 4:5"},
		{"unknown clause names the clause token",
			"property p {\n  condition 1 > 0;\n  bogus 1;\n}\n", "line 3:3"},
		{"duplicate condition names the second one",
			"property p {\n  condition 1 > 0;\n  condition 2 > 1;\n}\n", "line 3:3"},
		{"missing condition names the property token",
			"\nproperty p { severity 1; }\n", "line 2:1"},
		{"scenario bad default position",
			"scenario s {\n  param x float =\n    oops;\n}\n", "line 3:5"},
		{"scenario unknown primitive position",
			"scenario s {\n  inject sleep(1);\n  severity 1;\n}\n", "line 2:10"},
		{"eof renders as end of input",
			"property p { condition 1 > 0;", "end of input"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ParseFile(tt.src)
			if err == nil {
				t.Fatalf("ParseFile(%q) accepted malformed input", tt.src)
			}
			if !strings.Contains(err.Error(), tt.pos) {
				t.Fatalf("error %q does not carry position %q", err, tt.pos)
			}
		})
	}
}

// FuzzParse is the native-fuzzing harness for the whole language:
// arbitrary input must either parse or produce an error — never panic —
// and accepted scenarios must carry a well-formed compiled spec.
func FuzzParse(f *testing.F) {
	f.Add(`property p { condition wait("late_sender") > 0; severity 1; }`)
	f.Add("scenario s {\n  param extra float = 0.02 in [0.01, 0.04];\n" +
		"  param r int = 2;\n  param w distr = block2(0.004, 0.02);\n" +
		"  inject delayed_send(0.004, extra, r);\n  inject skewed_barrier(w, r);\n" +
		"  detects \"late_sender\";\n  localize \"hot\";\n" +
		"  severity floor(ranks() / 2) * extra * r;\n}")
	f.Add(`scenario s { inject ramp_send(64, 4096, 2); severity 0; }`)
	f.Add("property p {\n# comment\n condition 1 @")
	f.Fuzz(func(t *testing.T, src string) {
		file, err := ParseFile(src)
		if err != nil {
			return
		}
		for _, sc := range file.Scenarios {
			spec := sc.Spec()
			if spec == nil || spec.Name != sc.Name {
				t.Fatalf("accepted scenario %q has no compiled spec", sc.Name)
			}
			// The compiled closed form must be total over small shapes.
			spec.ExpectedWait(2, 1, spec.Defaults())
		}
	})
}

// TestParseRecoversValidAfterComments ensures the error-path lexer fixes
// do not reject well-formed inputs with comments and both comment styles.
func TestParseRecoversValidAfterComments(t *testing.T) {
	src := `
# hash comment
// slash comment
property ok {
	condition severity("late_sender") >= 0; // trailing comment
}
`
	props, err := parseNoPanic(t, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(props) != 1 || props[0].Name != "ok" {
		t.Fatalf("parsed %+v", props)
	}
}
