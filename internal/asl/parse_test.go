package asl

import (
	"strings"
	"testing"
)

// parseNoPanic runs Parse and converts any panic into a test failure, so
// every malformed input in the table asserts "error, not panic".
func parseNoPanic(t *testing.T, src string) (props []*Property, err error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Parse(%q) panicked: %v", src, r)
		}
	}()
	return Parse(src)
}

// TestParseErrorPaths is the table-driven error-path suite for the ASL
// parser: each malformed property expression must produce a diagnostic
// containing the expected fragment.
func TestParseErrorPaths(t *testing.T) {
	tests := []struct {
		name    string
		src     string
		wantErr string
	}{
		{"empty input", ``, "no property definitions"},
		{"only comment", "# nothing here\n", "no property definitions"},
		{"wrong keyword", `prop p { condition 1 > 0; }`, `expected "property"`},
		{"numeric property name", `property 5 { condition 1 > 0; }`, "expected property name"},
		{"truncated after keyword", `property`, "expected property name"},
		{"missing open brace", `property p condition 1 > 0; }`, `expected "{"`},
		{"unclosed body", `property p { condition 1 > 0;`, "expected clause"},
		{"missing condition", `property p { severity 1; }`, "missing condition"},
		{"empty body", `property p { }`, "missing condition"},
		{"unknown clause", `property p { condition 1 > 0; bogus 1; }`, "unknown clause"},
		{"duplicate condition", `property p { condition 1 > 0; condition 2 > 1; }`, "duplicate condition"},
		{"duplicate severity", `property p { condition 1 > 0; severity 1; severity 2; }`, "duplicate severity"},
		{"duplicate property", `property p { condition 1 > 0; } property p { condition 1 > 0; }`, "duplicate property"},
		{"missing semicolon", `property p { condition 1 > 0 }`, `expected ";"`},
		{"missing operand", `property p { condition 1 +; }`, "unexpected token"},
		{"dangling unary", `property p { condition -; }`, "unexpected token"},
		{"bare identifier", `property p { condition waiting; }`, "bare identifier"},
		{"malformed call", `property p { condition wait(; }`, "unexpected token"},
		{"unclosed call", `property p { condition wait("x" ; }`, `expected ")"`},
		{"bad argument list", `property p { condition wait("x",; }`, "unexpected token"},
		{"unclosed paren", `property p { condition (1 > 0; }`, `expected ")"`},
		{"stray close paren", `property p { condition ); }`, "unexpected token"},
		{"bad exponent", `property p { condition 1e > 0; }`, "bad number"},
		{"double dot number", `property p { condition 1.2.3 > 0; }`, "bad number"},
		{"unexpected character", `property p { condition 1 @ 2; }`, "unexpected character"},
		{"unterminated string", `property p { condition "oops; }`, "unterminated string"},
		{"string with newline", "property p { condition \"oops\n\"; }", "unterminated string"},
		{"garbage after property", `property p { condition 1 > 0; } ;`, `expected "property"`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			props, err := parseNoPanic(t, tt.src)
			if err == nil {
				t.Fatalf("Parse(%q) accepted malformed input: %+v", tt.src, props)
			}
			if !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("Parse(%q) error %q does not contain %q", tt.src, err, tt.wantErr)
			}
		})
	}
}

// TestParseErrorLineNumbers pins the line information in diagnostics.
func TestParseErrorLineNumbers(t *testing.T) {
	src := "property p {\n  condition 1 @ 2;\n}\n"
	_, err := parseNoPanic(t, src)
	if err == nil {
		t.Fatal("malformed input accepted")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error %q does not name line 2", err)
	}
}

// TestParseRecoversValidAfterComments ensures the error-path lexer fixes
// do not reject well-formed inputs with comments and both comment styles.
func TestParseRecoversValidAfterComments(t *testing.T) {
	src := `
# hash comment
// slash comment
property ok {
	condition severity("late_sender") >= 0; // trailing comment
}
`
	props, err := parseNoPanic(t, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(props) != 1 || props[0].Name != "ok" {
		t.Fatalf("parsed %+v", props)
	}
}
