// Package xctx defines the per-executor execution context shared by the MPI
// and OpenMP substrates: a clock, a trace buffer, and a lock-free random
// generator.  An MPI process owns one context; an OpenMP fork derives one
// child context per thread and folds the clocks back at the join.
package xctx

import (
	"sync/atomic"

	"repro/internal/trace"
	"repro/internal/vtime"
	"repro/internal/work"
)

// Ctx is the state of one executor (process or thread).  It is owned by a
// single goroutine and is not safe for concurrent use (the shared fields
// ThreadSeq and Adopt are themselves concurrency-safe).
type Ctx struct {
	Clock *vtime.Clock
	TB    *trace.Buffer // nil when tracing is disabled
	RNG   *work.RNG
	Loc   trace.Location

	// ThreadSeq allocates unique thread numbers within this rank, shared
	// by all contexts forked from the same root (nested OpenMP teams get
	// fresh, non-colliding thread ids).
	ThreadSeq *atomic.Int32
	// Adopt registers a sub-executor's trace buffer with the run so it
	// is included in the final merge; nil when tracing is disabled.  In
	// streaming runs Adopt instead finishes the buffer against the
	// run's trace.Sink (the thread has joined, so its stream is
	// complete) and recycles it immediately.
	Adopt func(*trace.Buffer)
	// Spill attaches a freshly forked sub-executor's buffer to the
	// run's trace.Sink so its events are spilled as chunk frames while
	// the thread executes; nil outside streaming runs.
	Spill func(*trace.Buffer)

	// TeamBase namespaces the OpenMP team ids allocated on this context so
	// they are a pure function of execution position rather than of global
	// allocation order: the root context of rank r starts at r<<14, and
	// each Fork offsets the child by thread<<9.  Identical programs then
	// produce identical team ids regardless of goroutine interleaving or
	// execution engine — the property the engine differential harness
	// byte-compares traces under.
	TeamBase uint32
	// teamSeq counts the teams this context has encountered (see
	// NextTeamID).  Owned by the context's goroutine, like the clock.
	teamSeq uint32
}

// New creates a root context for the given location.  The clock must be
// freshly constructed for this executor; tb may be nil to disable tracing.
func New(clock *vtime.Clock, tb *trace.Buffer, rng *work.RNG, loc trace.Location) *Ctx {
	seq := &atomic.Int32{}
	seq.Store(loc.Thread)
	return &Ctx{
		Clock: clock, TB: tb, RNG: rng, Loc: loc, ThreadSeq: seq,
		TeamBase: uint32(loc.Rank) << 14,
	}
}

// NextTeamID allocates the id of the next OpenMP team encountered on this
// context, deterministic in (rank, forking thread, team ordinal).  The id
// is folded into 31 bits so it fits the trace Comm field alongside MPI
// communicator ids; collisions across the two namespaces are harmless
// because analyzers key MPI and OMP events separately.
func (c *Ctx) NextTeamID() int32 {
	c.teamSeq++
	return int32((c.TeamBase + c.teamSeq) & 0x7fffffff)
}

// Now returns the executor's current time.
func (c *Ctx) Now() float64 { return c.Clock.Now() }

// Mode returns the clock mode.
func (c *Ctx) Mode() vtime.Mode { return c.Clock.Mode() }

// Work executes secs seconds of generic sequential work (ATS do_work).
func (c *Ctx) Work(secs float64) {
	work.Do(c.Clock, c.RNG, secs)
}

// Enter opens a trace region at the current time.
func (c *Ctx) Enter(name string) {
	c.TB.Enter(name, c.Now())
}

// Exit closes the current trace region at the current time.
func (c *Ctx) Exit() {
	c.TB.Exit(c.Now())
}

// Record appends a trace event stamped with the current location/path.
func (c *Ctx) Record(ev trace.Event) {
	c.TB.Record(ev)
}

// Fork derives a child context for a new thread, starting at the parent's
// current time with an independent random stream and its own trace buffer
// (nil if the parent is untraced).  The thread number is allocated from the
// rank-wide ThreadSeq counter, so concurrent and nested teams never share a
// location.
func (c *Ctx) Fork() *Ctx {
	thread := c.ThreadSeq.Add(1)
	loc := trace.Location{Rank: c.Loc.Rank, Thread: thread}
	child := &Ctx{
		Clock:     c.Clock.Fork(),
		RNG:       c.RNG.Fork(uint64(thread) + 1),
		Loc:       loc,
		ThreadSeq: c.ThreadSeq,
		Adopt:     c.Adopt,
		Spill:     c.Spill,
		TeamBase:  c.TeamBase + uint32(thread)<<9,
	}
	if c.TB != nil {
		child.TB = trace.NewBuffer(loc)
		// The child's events carry the parent's dynamic call path, as in
		// EXPERT's call-tree model.
		child.TB.Seed(c.TB.StackNames())
		if c.Spill != nil {
			c.Spill(child.TB)
		}
	}
	return child
}
