package xctx

import (
	"testing"
	"time"

	"repro/internal/trace"
	"repro/internal/vtime"
	"repro/internal/work"
)

func newCtx(traced bool) *Ctx {
	loc := trace.Location{Rank: 0, Thread: 0}
	var tb *trace.Buffer
	if traced {
		tb = trace.NewBuffer(loc)
	}
	return New(vtime.NewClock(vtime.Virtual, time.Now()), tb, work.NewRNG(1), loc)
}

func TestWorkAdvancesClock(t *testing.T) {
	c := newCtx(false)
	c.Work(0.5)
	c.Work(0.25)
	if c.Now() != 0.75 {
		t.Errorf("clock = %v, want 0.75", c.Now())
	}
}

func TestEnterExitRecordsEvents(t *testing.T) {
	c := newCtx(true)
	c.Enter("a")
	c.Work(1)
	c.Record(trace.Event{Kind: trace.KindMarker, Time: c.Now()})
	c.Exit()
	if c.TB.Len() != 3 {
		t.Errorf("events = %d, want 3", c.TB.Len())
	}
}

func TestUntracedIsNoop(t *testing.T) {
	c := newCtx(false)
	c.Enter("a") // must not panic on nil buffer
	c.Record(trace.Event{Kind: trace.KindMarker})
	c.Exit()
}

func TestForkThreadNumbering(t *testing.T) {
	c := newCtx(true)
	a := c.Fork()
	b := c.Fork()
	nested := a.Fork()
	ids := map[int32]bool{c.Loc.Thread: true}
	for _, x := range []*Ctx{a, b, nested} {
		if ids[x.Loc.Thread] {
			t.Errorf("duplicate thread id %d", x.Loc.Thread)
		}
		ids[x.Loc.Thread] = true
		if x.Loc.Rank != c.Loc.Rank {
			t.Errorf("fork changed rank: %v", x.Loc)
		}
	}
}

func TestForkInheritsClockAndPath(t *testing.T) {
	c := newCtx(true)
	c.Work(2)
	c.Enter("outer")
	c.Enter("inner")
	child := c.Fork()
	if child.Now() != 2 {
		t.Errorf("child clock = %v, want 2", child.Now())
	}
	// Child events carry the inherited path.
	child.Enter("leaf")
	child.Exit()
	tr := trace.Merge(child.TB)
	for _, ev := range tr.Events {
		if ev.Kind == trace.KindEnter {
			if got := tr.PathString(ev.Path); got != "outer/inner/leaf" {
				t.Errorf("child path = %q, want outer/inner/leaf", got)
			}
		}
	}
	c.Exit()
	c.Exit()
}

func TestForkedRNGIndependent(t *testing.T) {
	c := newCtx(false)
	a, b := c.Fork(), c.Fork()
	same := 0
	for i := 0; i < 32; i++ {
		if a.RNG.Next() == b.RNG.Next() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("forked RNG streams overlap (%d equal draws)", same)
	}
}
