// Package work implements the ATS work-specification layer (paper §3.1.1).
//
// The lowest module of the ATS framework is a function to specify "the
// amount of generic work to be executed by the individual threads or
// processes of a parallel program", expressed as a desired execution time.
// The original prototype implements this as a loop of random read and write
// accesses over two arrays large enough to defeat the cache, calibrated at
// installation time.
//
// This reproduction provides the same API in both clock modes: in Virtual
// mode Do advances the executor's logical clock exactly; in Real mode it
// performs genuine random-access memory work using the lock-free parallel
// random generator below.  The paper specifically recounts that using the
// libc rand() implicitly serialized the OpenMP version because of the lock
// around the shared seed, motivating a per-executor lock-free generator —
// RNG is exactly that.
package work

import (
	"sync"
	"time"

	"repro/internal/vtime"
)

// RNG is a small, fast, lock-free pseudo-random generator (splitmix64).
// Each executor (process or thread) owns its own RNG so that parallel work
// functions never contend on shared state — the fix for the rand()
// serialization problem described in the paper.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d}
}

// Fork derives an independent stream for a child executor, keyed by the
// child's id.  Streams with distinct ids are (for ATS purposes) independent.
func (r *RNG) Fork(id uint64) *RNG {
	return NewRNG(r.state ^ (id+1)*0xbf58476d1ce4e5b9)
}

// Next returns the next 64 pseudo-random bits.
func (r *RNG) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n).  n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("work: Intn with non-positive n")
	}
	return int(r.Next() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / (1 << 53)
}

// arraySize is the working-set size of the real-mode work loop, in uint64
// elements per array.  Two such arrays (16 MiB total) comfortably exceed
// typical last-level caches, so — as in the original ATS — the loop's
// execution time is dominated by memory access and largely independent of
// cache state.
const arraySize = 1 << 20

// workArrays is the shared pair of arrays for real-mode work.  Reads and
// writes race benignly between executors: the values are never interpreted,
// only the memory traffic matters.  To keep `go test -race` clean we give
// each executor its own array pair, pooled for reuse.
type workArrays struct {
	a, b []uint64
}

var arrayPool = sync.Pool{
	New: func() any {
		return &workArrays{
			a: make([]uint64, arraySize),
			b: make([]uint64, arraySize),
		}
	},
}

// realCal holds the calibrated iterations-per-second of the random-access
// loop, measured once per process (the ATS "configuration phase").
var (
	realCalOnce sync.Once
	itersPerSec float64
)

func randomAccessChunk(w *workArrays, rng *RNG, iters int) {
	mask := uint64(arraySize - 1)
	for i := 0; i < iters; i++ {
		j := rng.Next() & mask
		k := rng.Next() & mask
		w.b[k] = w.a[j] + w.b[k]
		w.a[j] = w.b[k] ^ uint64(i)
	}
}

// CalibrateReal measures the random-access loop rate.  Called automatically
// on first use; may be called explicitly at world start so calibration cost
// is not attributed to the first property function.
func CalibrateReal() {
	realCalOnce.Do(func() {
		w := arrayPool.Get().(*workArrays)
		defer arrayPool.Put(w)
		rng := NewRNG(12345)
		const probe = 1 << 18
		randomAccessChunk(w, rng, probe/8) // warm-up
		start := time.Now()
		randomAccessChunk(w, rng, probe)
		el := time.Since(start).Seconds()
		if el <= 0 {
			el = 1e-9
		}
		itersPerSec = float64(probe) / el
		if itersPerSec <= 0 {
			itersPerSec = 1
		}
	})
}

// Do executes secs seconds of generic sequential work on the executor that
// owns clock and rng.  This is the Go form of the ATS do_work(double secs).
//
// Virtual mode: the logical clock advances by exactly secs.
// Real mode: a calibrated random-access loop runs for approximately secs
// (millisecond-level accuracy, matching the paper's characterization).
// Negative or zero durations are no-ops.
func Do(clock *vtime.Clock, rng *RNG, secs float64) {
	if secs <= 0 {
		return
	}
	if clock.Mode() == vtime.Virtual {
		clock.Advance(secs)
		return
	}
	CalibrateReal()
	w := arrayPool.Get().(*workArrays)
	defer arrayPool.Put(w)
	deadline := time.Now().Add(time.Duration(secs * float64(time.Second)))
	remaining := secs
	for remaining > 0 {
		chunk := remaining
		const maxChunk = 2e-3 // re-check wall clock every ~2ms
		if chunk > maxChunk {
			chunk = maxChunk
		}
		randomAccessChunk(w, rng, int(chunk*itersPerSec))
		remaining = time.Until(deadline).Seconds()
	}
}
