package work

import (
	"math"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/vtime"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed streams diverge")
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d identical values", same)
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(1)
	c1, c2 := parent.Fork(1), parent.Fork(2)
	same := 0
	for i := 0; i < 64; i++ {
		if c1.Next() == c2.Next() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("forked streams overlap: %d identical values", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(17); v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(5)
	var sum float64
	const n = 10000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("mean = %v, want ≈ 0.5", mean)
	}
}

func TestRNGUniformity(t *testing.T) {
	// Chi-squared-ish sanity over 16 buckets.
	r := NewRNG(11)
	var buckets [16]int
	const n = 16000
	for i := 0; i < n; i++ {
		buckets[r.Intn(16)]++
	}
	for i, c := range buckets {
		if c < n/16-250 || c > n/16+250 {
			t.Errorf("bucket %d = %d, want ≈ %d", i, c, n/16)
		}
	}
}

// Lock-free property: concurrent use of per-executor RNGs must be clean
// under the race detector (this is the paper's rand() anecdote).
func TestRNGParallelNoContention(t *testing.T) {
	parent := NewRNG(1)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		r := parent.Fork(uint64(i))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10000; j++ {
				r.Next()
			}
		}()
	}
	wg.Wait()
}

func TestDoVirtualExact(t *testing.T) {
	clock := vtime.NewClock(vtime.Virtual, time.Now())
	rng := NewRNG(1)
	Do(clock, rng, 1.5)
	if clock.Now() != 1.5 {
		t.Errorf("virtual clock = %v, want 1.5", clock.Now())
	}
	Do(clock, rng, -1) // no-op
	Do(clock, rng, 0)
	if clock.Now() != 1.5 {
		t.Errorf("negative/zero work moved the clock: %v", clock.Now())
	}
}

func TestDoRealApproximate(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time work in -short mode")
	}
	if runtime.NumCPU() < 2 {
		// With the whole test suite (or the race detector) contending
		// for one core, the calibrated loop overshoots arbitrarily —
		// the paper's "not stable under heavy work load" caveat.
		t.Skip("needs an uncontended CPU for timing accuracy")
	}
	CalibrateReal()
	clock := vtime.NewClock(vtime.Real, time.Now())
	rng := NewRNG(1)
	const want = 0.05
	start := time.Now()
	Do(clock, rng, want)
	got := time.Since(start).Seconds()
	// The paper promises only "approx. milliseconds" accuracy; allow a
	// generous band for loaded CI machines.
	if got < want*0.8 || got > want*3 {
		t.Errorf("real work took %v, want ≈ %v", got, want)
	}
}

func TestQuickVirtualWorkAdds(t *testing.T) {
	inv := func(parts []uint16) bool {
		clock := vtime.NewClock(vtime.Virtual, time.Now())
		rng := NewRNG(1)
		var want float64
		for _, p := range parts {
			d := float64(p) / 1e4
			Do(clock, rng, d)
			want += d
		}
		return math.Abs(clock.Now()-want) < 1e-9*float64(len(parts)+1)
	}
	if err := quick.Check(inv, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
