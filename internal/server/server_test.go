package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/ats"
	"repro/internal/analyzer"
	"repro/internal/conformance"
	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/regress"
	"repro/internal/trace"
)

// newTestServer builds a Server over a fresh store plus an httptest
// front end.  The returned Server is the white-box handle (queue,
// counters); the httptest.Server is the black-box HTTP surface.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Store == nil {
		store, err := regress.Open(filepath.Join(t.TempDir(), "store"))
		if err != nil {
			t.Fatal(err)
		}
		cfg.Store = store
	}
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// corpusCase loads one committed conformance corpus case.
func corpusCase(t *testing.T, name string) (conformance.Case, []byte) {
	t.Helper()
	path := filepath.Join("..", "..", "testdata", "conformance-corpus", name)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := conformance.ReadCase(path)
	if err != nil {
		t.Fatal(err)
	}
	return cs, blob
}

// postReport posts body and decodes the server's Report payload.
func postReport(t *testing.T, url, contentType string, body []byte) (*Report, *http.Response) {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return &rep, resp
}

// propertySpool writes a late_sender run as an ATSC spool; extrawork
// scales the injected severity so two spools can disagree.
func propertySpool(t *testing.T, extrawork float64) string {
	t.Helper()
	spec, ok := core.Get("late_sender")
	if !ok {
		t.Fatal("late_sender not registered")
	}
	args := spec.Defaults()
	if extrawork > 0 {
		args.Float["extrawork"] = extrawork
	}
	path := filepath.Join(t.TempDir(), fmt.Sprintf("ls-%g.atsc", extrawork))
	if err := ats.SpoolProperty("late_sender", 4, 1, args, path); err != nil {
		t.Fatal(err)
	}
	return path
}

// offlineSpoolHash computes the profile hash of a spool through the
// offline streaming path — what atsanalyze-style local analysis yields.
func offlineSpoolHash(t *testing.T, path, experiment string) string {
	t.Helper()
	cr, err := trace.OpenChunkFile(path)
	if err != nil {
		t.Fatal(err)
	}
	st, err := trace.NewStream(cr)
	if err != nil {
		cr.Close()
		t.Fatal(err)
	}
	defer st.Close()
	rep, err := analyzer.AnalyzeStream(st, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := profile.FromAnalysis(experiment, profile.TraceInfoOfStream(st), rep, profile.RunInfo{})
	if err != nil {
		t.Fatal(err)
	}
	hash, err := prof.Hash()
	if err != nil {
		t.Fatal(err)
	}
	return hash
}

// TestCaseSubmitMatchesOfflineHash submits a corpus case and checks the
// server's profile hash is byte-identical to the determinism hash the
// offline conformance.Check pipeline computes for the same case.
func TestCaseSubmitMatchesOfflineHash(t *testing.T) {
	cs, blob := corpusCase(t, "seed001.json")
	_, ts := newTestServer(t, Config{})

	rep, resp := postReport(t, ts.URL+"/v1/cases", "application/json", blob)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/cases: %s", resp.Status)
	}
	if rep.Status != StatusDone || rep.Kind != "case" || rep.Experiment != "conformance" {
		t.Fatalf("unexpected report: %+v", rep)
	}
	if rep.ProfileHash == "" {
		t.Fatal("report carries no profile hash")
	}

	out, err := conformance.Check(cs, conformance.CheckOptions{SkipDeterminism: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ProfileHash != out.Hash {
		t.Errorf("server profile hash %s != offline conformance hash %s", rep.ProfileHash, out.Hash)
	}

	// The stored object round-trips to the same content address.
	getResp, err := http.Get(ts.URL + "/v1/store/" + rep.ProfileHash)
	if err != nil {
		t.Fatal(err)
	}
	defer getResp.Body.Close()
	if getResp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/store/{hash}: %s", getResp.Status)
	}
	prof, err := profile.Decode(getResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if h, err := prof.Hash(); err != nil || h != rep.ProfileHash {
		t.Errorf("served object hashes to %s (err %v), want %s", h, err, rep.ProfileHash)
	}

	// The report is retrievable by ID; unknown IDs 404.
	repResp, err := http.Get(ts.URL + "/v1/reports/" + rep.ID)
	if err != nil {
		t.Fatal(err)
	}
	repResp.Body.Close()
	if repResp.StatusCode != http.StatusOK {
		t.Errorf("GET /v1/reports/{id}: %s", repResp.Status)
	}
	missResp, err := http.Get(ts.URL + "/v1/reports/nope")
	if err != nil {
		t.Fatal(err)
	}
	missResp.Body.Close()
	if missResp.StatusCode != http.StatusNotFound {
		t.Errorf("GET unknown report: %s, want 404", missResp.Status)
	}
}

// TestTraceSubmitDiffDrift saves a baseline from one streamed run, then
// submits a run with a different injected severity and expects a drift
// verdict.  Both server-side hashes must match the offline streaming
// analysis of the same spools.
func TestTraceSubmitDiffDrift(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := propertySpool(t, 0)
	hot := propertySpool(t, 0.25)

	baseBlob, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	rep, resp := postReport(t, ts.URL+"/v1/traces?experiment=ls&save=1", "application/octet-stream", baseBlob)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST baseline trace: %s", resp.Status)
	}
	if !rep.Saved || rep.Status != StatusDone {
		t.Fatalf("baseline submission not saved: %+v", rep)
	}
	if want := offlineSpoolHash(t, base, "ls"); rep.ProfileHash != want {
		t.Errorf("server hash %s != offline hash %s", rep.ProfileHash, want)
	}

	hotBlob, err := os.ReadFile(hot)
	if err != nil {
		t.Fatal(err)
	}
	rep2, resp2 := postReport(t, ts.URL+"/v1/traces?experiment=ls", "application/octet-stream", hotBlob)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("POST drifted trace: %s", resp2.Status)
	}
	if want := offlineSpoolHash(t, hot, "ls"); rep2.ProfileHash != want {
		t.Errorf("server hash %s != offline hash %s", rep2.ProfileHash, want)
	}
	if rep2.BaselineHash != rep.ProfileHash {
		t.Errorf("compared against %s, want baseline %s", rep2.BaselineHash, rep.ProfileHash)
	}
	if rep2.Diff == nil || !rep2.Drift {
		t.Fatalf("expected a drift verdict, got %+v", rep2)
	}
}

// TestDedupServesCachedReport submits the same case twice — the second
// time with different JSON formatting — and checks the second response
// comes from the cache without re-running the analysis.
func TestDedupServesCachedReport(t *testing.T) {
	cs, blob := corpusCase(t, "seed002.json")
	s, ts := newTestServer(t, Config{})

	rep1, resp1 := postReport(t, ts.URL+"/v1/cases", "application/json", blob)
	if resp1.StatusCode != http.StatusOK || rep1.Cached {
		t.Fatalf("first submission: status %s cached %v", resp1.Status, rep1.Cached)
	}
	if got := s.AnalysesRun(); got != 1 {
		t.Fatalf("after first submission AnalysesRun = %d, want 1", got)
	}

	// Same case, cosmetically different JSON: must hit the cache.
	pretty, err := json.MarshalIndent(cs, "", "    ")
	if err != nil {
		t.Fatal(err)
	}
	rep2, resp2 := postReport(t, ts.URL+"/v1/cases", "application/json", pretty)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second submission: %s", resp2.Status)
	}
	if !rep2.Cached {
		t.Error("second submission not served from cache")
	}
	if rep2.ID != rep1.ID || rep2.ProfileHash != rep1.ProfileHash {
		t.Errorf("cached report diverges: %+v vs %+v", rep2, rep1)
	}
	if got := s.AnalysesRun(); got != 1 {
		t.Errorf("analysis re-ran: AnalysesRun = %d, want 1", got)
	}
}

// TestBackpressure fills the single-worker queue with blockers and
// expects a fresh submission to bounce with 429 and Retry-After.
func TestBackpressure(t *testing.T) {
	_, blob := corpusCase(t, "seed001.json")
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	// Occupy the worker...
	if err := s.queue.Submit(func() { close(started); <-release }); err != nil {
		t.Fatal(err)
	}
	<-started
	// ...and the one backlog slot.
	if err := s.queue.Submit(func() {}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(ts.URL+"/v1/cases", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submission: %s, want 429", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response carries no Retry-After")
	}
}

// TestIngestRejections drives the malformed/oversized table: body cap
// (413), trace content over policy limits (422), garbage bytes (422),
// missing parameters and bad JSON (400).
func TestIngestRejections(t *testing.T) {
	spool := propertySpool(t, 0)
	spoolBlob, err := os.ReadFile(spool)
	if err != nil {
		t.Fatal(err)
	}
	_, blob := corpusCase(t, "seed001.json")

	tests := []struct {
		name     string
		cfg      Config
		path     string
		body     []byte
		wantCode int
		wantErr  string
	}{
		{"case over body cap", Config{MaxBody: 16}, "/v1/cases", blob,
			http.StatusRequestEntityTooLarge, "exceeds"},
		{"trace over body cap", Config{MaxBody: 16}, "/v1/traces?experiment=x", spoolBlob,
			http.StatusRequestEntityTooLarge, "exceeds"},
		{"trace over event limit", Config{Limits: trace.Limits{MaxEvents: 2}}, "/v1/traces?experiment=x", spoolBlob,
			http.StatusUnprocessableEntity, "events, limit"},
		{"trace over location limit", Config{Limits: trace.Limits{MaxLocations: 1}}, "/v1/traces?experiment=x", spoolBlob,
			http.StatusUnprocessableEntity, "locations, limit"},
		{"garbage trace bytes", Config{}, "/v1/traces?experiment=x", []byte("NOPE not a trace"),
			http.StatusUnprocessableEntity, "unrecognized trace format"},
		{"trace without experiment", Config{}, "/v1/traces", spoolBlob,
			http.StatusBadRequest, "experiment"},
		{"bad threshold", Config{}, "/v1/traces?experiment=x&threshold=cold", spoolBlob,
			http.StatusBadRequest, "threshold"},
		{"bad case JSON", Config{}, "/v1/cases", []byte("{nope"),
			http.StatusBadRequest, "decoding case"},
		{"invalid case", Config{}, "/v1/cases", []byte(`{"schema":1,"procs":0,"threads":0}`),
			http.StatusUnprocessableEntity, "invalid case"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, ts := newTestServer(t, tc.cfg)
			resp, err := http.Post(ts.URL+tc.path, "application/octet-stream", bytes.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("status %s, want %d", resp.Status, tc.wantCode)
			}
			var payload struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
				t.Fatalf("decoding error payload: %v", err)
			}
			if !strings.Contains(payload.Error, tc.wantErr) {
				t.Errorf("error %q does not mention %q", payload.Error, tc.wantErr)
			}
		})
	}
}

// TestBaselineAPI promotes and reads baselines over HTTP.
func TestBaselineAPI(t *testing.T) {
	_, blob := corpusCase(t, "seed001.json")
	_, ts := newTestServer(t, Config{})

	rep, _ := postReport(t, ts.URL+"/v1/cases", "application/json", blob)
	if rep.Status != StatusDone {
		t.Fatalf("submission failed: %+v", rep)
	}

	// No baseline yet.
	resp, err := http.Get(ts.URL + "/v1/baselines/conformance")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET baseline before promotion: %s, want 404", resp.Status)
	}

	// Promote the stored profile by hash.
	body, _ := json.Marshal(map[string]string{"hash": rep.ProfileHash})
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/baselines/conformance", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	putResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	putResp.Body.Close()
	if putResp.StatusCode != http.StatusOK {
		t.Fatalf("PUT baseline: %s", putResp.Status)
	}

	getResp, err := http.Get(ts.URL + "/v1/baselines/conformance")
	if err != nil {
		t.Fatal(err)
	}
	defer getResp.Body.Close()
	var info struct {
		Experiment string   `json:"experiment"`
		Hash       string   `json:"hash"`
		History    []string `json:"history"`
	}
	if err := json.NewDecoder(getResp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Hash != rep.ProfileHash || len(info.History) != 1 {
		t.Errorf("baseline info %+v, want hash %s with 1 history entry", info, rep.ProfileHash)
	}

	// Promoting an unknown object is rejected.
	bogus, _ := json.Marshal(map[string]string{"hash": strings.Repeat("ab", 32)})
	req, err = http.NewRequest(http.MethodPut, ts.URL+"/v1/baselines/conformance", bytes.NewReader(bogus))
	if err != nil {
		t.Fatal(err)
	}
	badResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	badResp.Body.Close()
	if badResp.StatusCode != http.StatusNotFound {
		t.Errorf("PUT unknown hash: %s, want 404", badResp.Status)
	}
}

// TestPathTraversalRejected plants a file outside the store exactly
// where a %2F-smuggled traversal "hash" would land and checks both
// attacker entry points — GET /v1/store/{hash} and the hash field of
// PUT /v1/baselines/{experiment} — refuse non-hash names instead of
// resolving them against the filesystem.
func TestPathTraversalRejected(t *testing.T) {
	root := t.TempDir()
	store, err := regress.Open(filepath.Join(root, "store"))
	if err != nil {
		t.Fatal(err)
	}
	// The legacy flat layout resolves hash "../../secret" to
	// root/secret.json; a vulnerable server would serve this file.
	const marker = `{"planted":"secret"}`
	if err := os.WriteFile(filepath.Join(root, "secret.json"), []byte(marker), 0o644); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Store: store})

	resp, err := http.Get(ts.URL + "/v1/store/..%2F..%2Fsecret")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET traversal hash: %s, want 404", resp.Status)
	}
	if strings.Contains(string(body), "planted") {
		t.Errorf("traversal served the planted file: %s", body)
	}

	reqBody, _ := json.Marshal(map[string]string{"hash": "../../secret"})
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/baselines/exp", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	putResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	putResp.Body.Close()
	if putResp.StatusCode != http.StatusBadRequest {
		t.Errorf("PUT traversal hash: %s, want 400", putResp.Status)
	}
}

// TestReportEviction bounds the dedup cache: with MaxReports=1, a
// second completed submission evicts the first, whose resubmission then
// re-runs the analysis as a cache miss.
func TestReportEviction(t *testing.T) {
	_, blobA := corpusCase(t, "seed001.json")
	_, blobB := corpusCase(t, "seed002.json")
	s, ts := newTestServer(t, Config{MaxReports: 1})

	repA, respA := postReport(t, ts.URL+"/v1/cases", "application/json", blobA)
	if respA.StatusCode != http.StatusOK {
		t.Fatalf("first submission: %s", respA.Status)
	}
	if _, respB := postReport(t, ts.URL+"/v1/cases", "application/json", blobB); respB.StatusCode != http.StatusOK {
		t.Fatalf("second submission: %s", respB.Status)
	}

	// Eviction runs on the worker after the submitter's response is
	// written, so poll for the first report to disappear.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/reports/" + repA.ID)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("report %s never evicted (last status %s)", repA.ID, resp.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}

	repA2, _ := postReport(t, ts.URL+"/v1/cases", "application/json", blobA)
	if repA2.Cached {
		t.Error("evicted report still served from cache")
	}
	if got := s.AnalysesRun(); got != 3 {
		t.Errorf("AnalysesRun = %d, want 3 (eviction must force a re-run)", got)
	}
}

// TestSaturatedDuplicatesAllComplete races identical submissions
// against a saturated queue: every request must terminate with 429 —
// none may dedup onto a pending report whose enqueue failed and then
// wait forever on a done channel nothing will close.
func TestSaturatedDuplicatesAllComplete(t *testing.T) {
	_, blob := corpusCase(t, "seed003.json")
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	if err := s.queue.Submit(func() { close(started); <-release }); err != nil {
		t.Fatal(err)
	}
	<-started
	if err := s.queue.Submit(func() {}); err != nil {
		t.Fatal(err)
	}

	client := &http.Client{Timeout: 10 * time.Second}
	codes := make([]int, 8)
	var wg sync.WaitGroup
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := client.Post(ts.URL+"/v1/cases", "application/json", bytes.NewReader(blob))
			if err != nil {
				t.Errorf("request %d did not complete: %v", i, err)
				return
			}
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != 0 && code != http.StatusTooManyRequests {
			t.Errorf("request %d: status %d, want 429", i, code)
		}
	}
}

// TestStoreFaultIs500 corrupts the ref index and checks baseline reads
// and promotions surface the store fault as 500, not a masked 404.
func TestStoreFaultIs500(t *testing.T) {
	root := t.TempDir()
	store, err := regress.Open(filepath.Join(root, "store"))
	if err != nil {
		t.Fatal(err)
	}
	_, blob := corpusCase(t, "seed001.json")
	_, ts := newTestServer(t, Config{Store: store})
	rep, _ := postReport(t, ts.URL+"/v1/cases", "application/json", blob)
	if rep.Status != StatusDone {
		t.Fatalf("submission failed: %+v", rep)
	}

	if err := os.WriteFile(filepath.Join(root, "store", "refs.json"), []byte("{corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/baselines/conformance")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("GET baseline with corrupt refs: %s, want 500", resp.Status)
	}

	body, _ := json.Marshal(map[string]string{"hash": rep.ProfileHash})
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/baselines/conformance", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	putResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	putResp.Body.Close()
	if putResp.StatusCode != http.StatusInternalServerError {
		t.Errorf("PUT baseline with corrupt refs: %s, want 500", putResp.Status)
	}
}

// TestStats sanity-checks the /v1/stats counters after a dedup pair.
func TestStats(t *testing.T) {
	_, blob := corpusCase(t, "seed003.json")
	_, ts := newTestServer(t, Config{})
	postReport(t, ts.URL+"/v1/cases", "application/json", blob)
	postReport(t, ts.URL+"/v1/cases", "application/json", blob)

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.AnalysesRun != 1 || st.DedupHits != 1 || st.Reports != 1 {
		t.Errorf("stats = %+v, want 1 analysis, 1 dedup hit, 1 report", st)
	}
	if st.Queue.Workers <= 0 || st.Queue.Depth <= 0 {
		t.Errorf("queue stats not populated: %+v", st.Queue)
	}
}
