package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/profile"
	"repro/internal/similarity"
)

// TestSimilarEndpoint drives GET /v1/similar/{hash} black-box: top-1
// self-match over a seeded store, parameter validation, and 404 on
// unknown objects.
func TestSimilarEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	hashes := make([]string, 0, 12)
	for i := 0; i < 12; i++ {
		h, err := s.cfg.Store.Put(similarity.SyntheticProfile(9, i))
		if err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, h)
	}

	resp, err := http.Get(ts.URL + "/v1/similar/" + hashes[3] + "?k=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var info similarInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Query != hashes[3] || info.Indexed != len(hashes) {
		t.Fatalf("info = %+v", info)
	}
	if len(info.Matches) == 0 || info.Matches[0].Hash != hashes[3] {
		t.Fatalf("top-1 = %+v, want self %s", info.Matches, hashes[3][:12])
	}
	if info.Matches[0].Similarity < 0.999999 {
		t.Fatalf("self similarity = %v", info.Matches[0].Similarity)
	}
	if info.Probed <= 0 {
		t.Fatalf("probed = %d", info.Probed)
	}

	for _, tc := range []struct {
		path string
		code int
	}{
		{"/v1/similar/" + hashes[0] + "?k=0", http.StatusBadRequest},
		{"/v1/similar/" + hashes[0] + "?k=zebra", http.StatusBadRequest},
		{"/v1/similar/not-a-hash", http.StatusNotFound},
		{"/v1/similar/" + fmt.Sprintf("%064d", 3), http.StatusNotFound}, // valid form, not stored
	} {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("GET %s: status = %d, want %d", tc.path, resp.StatusCode, tc.code)
		}
	}
}

// TestFinishAttachesRankOutliers: a submission whose profile carries the
// straggler signature gets its outlier ranks on the report.
func TestFinishAttachesRankOutliers(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	straggler := &profile.Profile{
		Schema:     profile.SchemaVersion,
		Experiment: "straggler_run",
		Run:        profile.RunInfo{Procs: 8, Threads: 1},
		Threshold:  0.005,
		Properties: []profile.Property{{
			Name: analyzer.PropWaitAtBarrier, Severity: 0.02, Significant: true,
			Wait: 7,
			Locations: []profile.LocationWait{
				{Rank: 0, Wait: 1}, {Rank: 1, Wait: 1.1}, {Rank: 2, Wait: 0.9},
				{Rank: 3, Wait: 1}, {Rank: 4, Wait: 1.05}, {Rank: 5, Wait: 0.95},
				{Rank: 6, Wait: 1}, // rank 7 waits for no one: the straggler
			},
		}},
	}
	rep := &Report{Kind: "trace", Experiment: straggler.Experiment}
	s.finish(rep, straggler)
	if rep.Status != StatusDone {
		t.Fatalf("status = %q (%s)", rep.Status, rep.Error)
	}
	if len(rep.RankOutliers) != 1 || rep.RankOutliers[0].Rank != 7 ||
		rep.RankOutliers[0].Kind != similarity.KindStraggler {
		t.Fatalf("RankOutliers = %+v, want rank 7 straggler", rep.RankOutliers)
	}

	// A uniform run reports none.
	uniform := &profile.Profile{
		Schema:     profile.SchemaVersion,
		Experiment: "uniform_run",
		Run:        profile.RunInfo{Procs: 4, Threads: 1},
		Threshold:  0.005,
		Properties: []profile.Property{{
			Name: analyzer.PropWaitAtBarrier, Severity: 0.02, Significant: true,
			Wait: 4,
			Locations: []profile.LocationWait{
				{Rank: 0, Wait: 1}, {Rank: 1, Wait: 1.02},
				{Rank: 2, Wait: 0.98}, {Rank: 3, Wait: 1},
			},
		}},
	}
	rep = &Report{Kind: "trace", Experiment: uniform.Experiment}
	s.finish(rep, uniform)
	if len(rep.RankOutliers) != 0 {
		t.Fatalf("uniform run flagged %+v", rep.RankOutliers)
	}
}
