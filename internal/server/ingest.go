package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"

	"repro/internal/analyzer"
	"repro/internal/conformance"
	"repro/internal/profile"
	"repro/internal/regress"
	"repro/internal/similarity"
	"repro/internal/trace"
)

// handleCases accepts a conformance case as JSON, runs it unperturbed
// through exactly the conformance.Check pipeline, and reports the
// resulting canonical profile against the experiment baseline.
//
//	POST /v1/cases?experiment=NAME&save=1
//
// The experiment defaults to conformance.DefaultExperiment, under which
// the profile hash equals the determinism hash conformance.Check
// computes for the same case.
func (s *Server) handleCases(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err != nil {
		bodyError(w, err)
		return
	}
	var cs conformance.Case
	if err := json.Unmarshal(raw, &cs); err != nil {
		httpError(w, http.StatusBadRequest, "decoding case: %v", err)
		return
	}
	if err := cs.Validate(); err != nil {
		httpError(w, http.StatusUnprocessableEntity, "invalid case: %v", err)
		return
	}
	exp := r.URL.Query().Get("experiment")
	if exp == "" {
		exp = conformance.DefaultExperiment
	}
	// Dedup on the re-marshaled case so formatting differences in the
	// submitted JSON do not defeat the cache.
	canon, err := json.Marshal(cs)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	id := reportID("case", exp, "", canon)
	s.submit(w, r, id, queryBool(r, "save"), func() (*Report, func(*Report)) {
		rep := &Report{Kind: "case", Experiment: exp}
		return rep, func(rep *Report) {
			prof, _, err := conformance.CaseProfile(cs, exp)
			if err != nil {
				s.fail(rep, err)
				return
			}
			s.finish(rep, prof)
		}
	})
}

// handleTraces accepts a serialized trace — materialized ATS1 or
// streaming ATSC spool, auto-detected by magic — spools it to disk
// while hashing, and analyzes it under the configured input limits.
// ATSC uploads are analyzed by streaming straight off the spool, so
// server memory stays O(locations) regardless of upload size.
//
//	POST /v1/traces?experiment=NAME&threshold=0.005&save=1
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	exp := q.Get("experiment")
	if exp == "" {
		httpError(w, http.StatusBadRequest, "missing experiment query parameter")
		return
	}
	threshold := 0.0 // zero selects the analyzer default
	if v := q.Get("threshold"); v != "" {
		var err error
		if threshold, err = strconv.ParseFloat(v, 64); err != nil || threshold < 0 {
			httpError(w, http.StatusBadRequest, "bad threshold %q", v)
			return
		}
	}
	spool, bodyHash, err := spoolBody(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err != nil {
		bodyError(w, err)
		return
	}
	id := reportID("trace", exp, fmt.Sprintf("threshold=%g", threshold), []byte(bodyHash))
	enqueued := s.submit(w, r, id, queryBool(r, "save"), func() (*Report, func(*Report)) {
		rep := &Report{Kind: "trace", Experiment: exp}
		return rep, func(rep *Report) {
			defer os.Remove(spool)
			prof, err := s.analyzeSpool(spool, exp, threshold)
			if err != nil {
				s.fail(rep, err)
				return
			}
			s.finish(rep, prof)
		}
	})
	if !enqueued {
		os.Remove(spool) // dedup hit or rejection: the job never ran
	}
}

// spoolBody copies an upload to a temp file while hashing it, so dedup
// can key on content without holding the body in memory.
func spoolBody(r io.Reader) (path, hash string, err error) {
	f, err := os.CreateTemp("", "atsd-spool-*")
	if err != nil {
		return "", "", err
	}
	h := sha256.New()
	_, err = io.Copy(f, io.TeeReader(r, h))
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(f.Name())
		return "", "", err
	}
	return f.Name(), hex.EncodeToString(h.Sum(nil)), nil
}

// analyzeSpool analyzes a spooled upload under the server's input
// limits and returns its canonical profile.  The ATSC path streams: it
// never materializes the event list.
func (s *Server) analyzeSpool(path, experiment string, threshold float64) (*profile.Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var magic [4]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("trace body: %w", err)
	}
	opt := analyzer.Options{Threshold: threshold}
	switch string(magic[:]) {
	case "ATSC":
		f.Close()
		cr, err := trace.OpenChunkFileLimited(path, s.cfg.Limits)
		if err != nil {
			return nil, err
		}
		st, err := trace.NewStream(cr)
		if err != nil {
			cr.Close()
			return nil, err
		}
		defer st.Close()
		rep, err := analyzer.AnalyzeStream(st, opt)
		if err != nil {
			return nil, err
		}
		return profile.FromAnalysis(experiment, profile.TraceInfoOfStream(st), rep, profile.RunInfo{})
	case "ATS1":
		defer f.Close()
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, err
		}
		tr, err := trace.ReadLimited(f, s.cfg.Limits)
		if err != nil {
			return nil, err
		}
		rep := analyzer.Analyze(tr, opt)
		return profile.FromRun(experiment, tr, rep, profile.RunInfo{})
	default:
		f.Close()
		return nil, fmt.Errorf("unrecognized trace format %q (want ATS1 or ATSC)", magic[:])
	}
}

// fail completes a report with an error.
func (s *Server) fail(rep *Report, err error) {
	s.mu.Lock()
	rep.Status = StatusError
	rep.Error = err.Error()
	s.mu.Unlock()
}

// finish stores the analyzed profile, diffs it against the experiment
// baseline (when one exists), and completes the report.
func (s *Server) finish(rep *Report, prof *profile.Profile) {
	hash, err := s.cfg.Store.Put(prof)
	if err != nil {
		s.fail(rep, err)
		return
	}
	var (
		baseHash string
		diff     *regress.Diff
		drift    bool
	)
	if base, bh, err := s.cfg.Store.Baseline(prof.Experiment); err == nil {
		baseHash = bh
		diff = regress.Compare(base, prof, s.cfg.Tol)
		drift = diff.Regressed()
	}
	// Within-run rank clustering: flag straggler/deviant ranks as
	// analyzer.PropRankOutlier findings on the report.  Derived from the
	// canonical profile, so the verdict is identical to what the offline
	// tools compute for the same submission.
	outliers := similarity.ClusterRanks(prof, similarity.RankOptions{}).Outliers
	s.mu.Lock()
	rep.ProfileHash = hash
	rep.BaselineHash = baseHash
	rep.Diff = diff
	rep.Drift = drift
	rep.RankOutliers = outliers
	rep.Status = StatusDone
	s.mu.Unlock()
}

// bodyError maps a request-body read failure to 413 (cap exceeded) or
// 400 (transport error).
func bodyError(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		httpError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", mbe.Limit)
		return
	}
	httpError(w, http.StatusBadRequest, "reading body: %v", err)
}

func queryBool(r *http.Request, name string) bool {
	switch r.URL.Query().Get(name) {
	case "1", "true", "yes":
		return true
	}
	return false
}
