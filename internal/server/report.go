package server

import (
	"crypto/sha256"
	"encoding/hex"

	"repro/internal/regress"
	"repro/internal/similarity"
)

// Report statuses.  A report is created running, and moves to exactly
// one of done or error when its analysis job completes.
const (
	StatusRunning = "running"
	StatusDone    = "done"
	StatusError   = "error"
)

// Report is the server-side record of one submission: what was
// submitted, the content hash of the canonical profile it produced, and
// the drift verdict against the experiment's baseline.  Reports are
// immutable once Status leaves StatusRunning (baseline promotion may
// still flip Saved) and are cached by ID, which is itself a content
// hash of the submission — identical submissions share one report.
type Report struct {
	ID         string `json:"id"`
	Kind       string `json:"kind"` // "case" or "trace"
	Experiment string `json:"experiment"`
	Status     string `json:"status"`
	// Cached is set on responses served from the report cache without
	// re-running the analysis.
	Cached bool `json:"cached,omitempty"`
	// ProfileHash is the content address of the canonical profile in
	// the store — byte-identical to what the offline CLI path computes
	// for the same input (fetch it via GET /v1/store/{hash}).
	ProfileHash string `json:"profile_hash,omitempty"`
	// BaselineHash identifies the baseline the submission was compared
	// against; empty when the experiment had none yet.
	BaselineHash string `json:"baseline_hash,omitempty"`
	// Saved reports that this submission's profile was promoted to the
	// experiment baseline (?save=1).
	Saved bool `json:"saved,omitempty"`
	// Drift is the verdict: true when the comparison regressed outside
	// tolerance.
	Drift bool `json:"drift"`
	// Diff is the full property-level comparison, present whenever a
	// baseline existed.
	Diff *regress.Diff `json:"diff,omitempty"`
	// RankOutliers lists the submission's behavioral outlier ranks
	// (analyzer.PropRankOutlier findings: stragglers and deviants from
	// similarity.ClusterRanks); empty when every rank clusters with the
	// pack or the run is below the severity gate.
	RankOutliers []similarity.RankFinding `json:"rank_outliers,omitempty"`
	Error        string                   `json:"error,omitempty"`

	// done is closed when the analysis job completes; dedup waiters and
	// the submitting handler block on it.
	done chan struct{}
}

// reportID derives the dedup key of a submission: a content hash over
// everything that determines the analysis result — the submission kind,
// the experiment, any analysis options, and the canonical body bytes.
// Fields are length-prefixed by a NUL separator so distinct tuples
// cannot collide by concatenation.
func reportID(kind, experiment, opts string, body []byte) string {
	h := sha256.New()
	for _, part := range []string{kind, experiment, opts} {
		h.Write([]byte(part))
		h.Write([]byte{0})
	}
	h.Write(body)
	return hex.EncodeToString(h.Sum(nil))
}
