// Package server implements atsd, the long-running analysis and
// regression service over the content-addressed profile store.
//
// The server accepts two kinds of submissions: conformance cases (JSON,
// POST /v1/cases) and serialized traces (raw ATS1 or ATSC bytes,
// POST /v1/traces).  Each submission is analyzed through exactly the
// same code path as the offline CLI tools — conformance.CaseProfile for
// cases, trace.ReadLimited/OpenChunkFileLimited plus the analyzer for
// traces — so a server-side report carries the same profile content
// hash the offline path would produce on the same input.  The resulting
// profile is stored in a regress.Store, compared against the
// experiment's baseline, and the verdict served as a JSON report.
//
// Work queues through a bounded campaign.Queue: when every worker is
// busy and the backlog is full, submissions are rejected with 429 and a
// Retry-After header rather than buffered without bound.  Identical
// submissions (same kind, experiment, analysis options, and content)
// are deduplicated by content hash: the second submission returns the
// cached report without re-running the analysis.  The report cache is
// bounded: once more than Config.MaxReports submissions have completed,
// the oldest completed reports are evicted (in-flight reports are never
// evicted, so dedup waiters always see their job finish).
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/regress"
	"repro/internal/similarity"
	"repro/internal/trace"
)

// DefaultMaxBody is the request-body cap applied when Config.MaxBody is
// zero: large enough for real trace uploads, small enough to bound one
// request's spool.
const DefaultMaxBody = 64 << 20

// DefaultMaxReports is the completed-report cache cap applied when
// Config.MaxReports is zero.
const DefaultMaxReports = 4096

// Config assembles a Server.  The zero value of every field except
// Store is usable: missing knobs take the documented defaults.
type Config struct {
	// Store is the profile store submissions are analyzed against.
	Store *regress.Store
	// Workers and QueueDepth size the analysis pool (campaign.NewQueue
	// semantics: zero means one worker per CPU, backlog 2x workers).
	Workers    int
	QueueDepth int
	// MaxBody caps one request body in bytes (default DefaultMaxBody).
	MaxBody int64
	// MaxReports caps the completed-report dedup cache (default
	// DefaultMaxReports).  When more submissions than this have
	// completed, the oldest completed reports are evicted — resubmitting
	// one re-runs its analysis.  In-flight reports are never evicted.
	MaxReports int
	// Limits bounds untrusted trace content (events, locations, frame
	// size).  The zero value is unlimited.
	Limits trace.Limits
	// Tol is the drift tolerance for baseline comparisons (zero fields
	// take the regress defaults).
	Tol regress.Tolerances
}

// Server is the atsd HTTP handler plus its analysis pool and report
// cache.  Create with New, shut down with Close.
type Server struct {
	cfg   Config
	queue *campaign.Queue
	mux   *http.ServeMux

	mu      sync.Mutex
	reports map[string]*Report
	// doneOrder lists completed report IDs oldest first; retire evicts
	// from its head once the cache exceeds cfg.MaxReports.  Only
	// completed IDs enter it, so in-flight reports are never evicted.
	doneOrder []string

	analyses  atomic.Int64 // analyses actually executed (dedup misses)
	dedupHits atomic.Int64 // submissions served from the report cache
	started   time.Time
}

// New builds a Server over cfg.Store.  The caller owns the store; Close
// stops the workers but leaves the store open.
func New(cfg Config) *Server {
	if cfg.Store == nil {
		panic("server: Config.Store is required")
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = DefaultMaxBody
	}
	if cfg.MaxReports <= 0 {
		cfg.MaxReports = DefaultMaxReports
	}
	s := &Server{
		cfg:     cfg,
		queue:   campaign.NewQueue(cfg.Workers, cfg.QueueDepth),
		mux:     http.NewServeMux(),
		reports: make(map[string]*Report),
		started: time.Now(),
	}
	s.mux.HandleFunc("POST /v1/cases", s.handleCases)
	s.mux.HandleFunc("POST /v1/traces", s.handleTraces)
	s.mux.HandleFunc("GET /v1/reports/{id}", s.handleReport)
	s.mux.HandleFunc("GET /v1/baselines/{experiment}", s.handleBaselineGet)
	s.mux.HandleFunc("PUT /v1/baselines/{experiment}", s.handleBaselinePut)
	s.mux.HandleFunc("GET /v1/store/{hash}", s.handleObject)
	s.mux.HandleFunc("GET /v1/similar/{hash}", s.handleSimilar)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// ServeHTTP dispatches to the v1 routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close drains the analysis pool.  In-flight jobs finish; new
// submissions are rejected with 503.
func (s *Server) Close() {
	s.queue.Close()
}

// AnalysesRun reports how many analyses actually executed — dedup cache
// hits do not count.  Tests use it to prove a resubmission was served
// from the cache.
func (s *Server) AnalysesRun() int64 { return s.analyses.Load() }

// Stats is the /v1/stats payload.
type Stats struct {
	UptimeS     float64             `json:"uptime_s"`
	Queue       campaign.QueueStats `json:"queue"`
	Reports     int                 `json:"reports"`
	AnalysesRun int64               `json:"analyses_run"`
	DedupHits   int64               `json:"dedup_hits"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := len(s.reports)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, Stats{
		UptimeS:     time.Since(s.started).Seconds(),
		Queue:       s.queue.Stats(),
		Reports:     n,
		AnalysesRun: s.analyses.Load(),
		DedupHits:   s.dedupHits.Load(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	rep, ok := s.reports[id]
	var snap Report
	if ok {
		snap = *rep
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown report %q", id)
		return
	}
	code := http.StatusOK
	if snap.Status == StatusRunning {
		code = http.StatusAccepted
	}
	writeJSON(w, code, snap)
}

// baselineInfo is the GET /v1/baselines/{experiment} payload.
type baselineInfo struct {
	Experiment string   `json:"experiment"`
	Hash       string   `json:"hash"`
	History    []string `json:"history,omitempty"`
}

func (s *Server) handleBaselineGet(w http.ResponseWriter, r *http.Request) {
	exp := r.PathValue("experiment")
	_, hash, err := s.cfg.Store.Baseline(exp)
	if err != nil {
		httpError(w, storeErrorCode(err), "%v", err)
		return
	}
	hist, err := s.cfg.Store.History(exp)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, baselineInfo{Experiment: exp, Hash: hash, History: hist})
}

func (s *Server) handleBaselinePut(w http.ResponseWriter, r *http.Request) {
	exp := r.PathValue("experiment")
	var req struct {
		Hash string `json:"hash"`
	}
	body := http.MaxBytesReader(w, r.Body, 4096)
	if err := json.NewDecoder(body).Decode(&req); err != nil || req.Hash == "" {
		httpError(w, http.StatusBadRequest, "want body {\"hash\": \"...\"}")
		return
	}
	if !regress.ValidHash(req.Hash) {
		httpError(w, http.StatusBadRequest, "malformed profile hash %q", req.Hash)
		return
	}
	if err := s.cfg.Store.SetBaseline(exp, req.Hash); err != nil {
		httpError(w, storeErrorCode(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, baselineInfo{Experiment: exp, Hash: req.Hash})
}

// storeErrorCode classifies a store lookup failure: a missing object or
// missing baseline ref is the client's mistake (404); anything else —
// refs.json unreadable, object corrupt — is a server fault (500).
func storeErrorCode(err error) int {
	if errors.Is(err, fs.ErrNotExist) || errors.Is(err, regress.ErrNoBaseline) {
		return http.StatusNotFound
	}
	return http.StatusInternalServerError
}

func (s *Server) handleObject(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	// The path value is attacker-controlled and, under Go 1.22 mux
	// semantics, may smuggle %2F-encoded slashes into the wildcard
	// segment; only the exact content-hash form ever reaches the store.
	if !regress.ValidHash(hash) {
		httpError(w, http.StatusNotFound, "unknown object %q", hash)
		return
	}
	f, err := s.cfg.Store.ObjectReader(hash)
	if err != nil {
		httpError(w, http.StatusNotFound, "unknown object %q", hash)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/json")
	io.Copy(w, f)
}

// similarInfo is the GET /v1/similar/{hash} payload.
type similarInfo struct {
	Query string `json:"query"`
	// Probed is how many indexed profiles were actually scored — the
	// LSH candidate set, not the whole store.
	Probed  int                `json:"probed"`
	Indexed int                `json:"indexed"`
	Matches []similarity.Match `json:"matches"`
}

// handleSimilar serves top-k nearest-profile queries over the store's
// persistent LSH index.
//
//	GET /v1/similar/{hash}?k=5
func (s *Server) handleSimilar(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if !regress.ValidHash(hash) {
		httpError(w, http.StatusNotFound, "unknown object %q", hash)
		return
	}
	k := 5
	if v := r.URL.Query().Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 || n > 1000 {
			httpError(w, http.StatusBadRequest, "bad k %q", v)
			return
		}
		k = n
	}
	matches, probed, err := s.cfg.Store.Similar(hash, k)
	if err != nil {
		httpError(w, storeErrorCode(err), "%v", err)
		return
	}
	idx, err := s.cfg.Store.EnsureIndex()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, similarInfo{
		Query:   hash,
		Probed:  probed,
		Indexed: idx.Len(),
		Matches: matches,
	})
}

// submit runs the dedup-or-enqueue protocol shared by the case and
// trace endpoints.  fresh is called exactly once per distinct report ID
// to create the pending report and its analysis job; it is not called
// on a cache hit.  save promotes the submission's profile to the
// experiment baseline once the analysis is done.  The return value
// reports whether a fresh job was enqueued — false means any resources
// prepared for the job (e.g. a spool file) are still the caller's to
// clean up.
func (s *Server) submit(w http.ResponseWriter, r *http.Request, id string, save bool,
	fresh func() (*Report, func(*Report))) (enqueued bool) {
	s.mu.Lock()
	rep, hit := s.reports[id]
	if !hit {
		var job func(*Report)
		rep, job = fresh()
		rep.ID = id
		rep.Status = StatusRunning
		rep.done = make(chan struct{})
		done := rep.done
		// Enqueue before publishing the report, all under s.mu (Submit
		// never blocks): a concurrent duplicate must never observe a
		// pending report whose enqueue then fails, or it would wait on a
		// done channel nothing will ever close.
		err := s.queue.Submit(func() {
			s.analyses.Add(1)
			job(rep)
			close(done)
			s.retire(id)
		})
		if err != nil {
			s.mu.Unlock()
			if errors.Is(err, campaign.ErrSaturated) {
				w.Header().Set("Retry-After", "1")
				httpError(w, http.StatusTooManyRequests, "analysis queue is full")
			} else {
				httpError(w, http.StatusServiceUnavailable, "%v", err)
			}
			return false
		}
		s.reports[id] = rep
		enqueued = true
	}
	s.mu.Unlock()

	select {
	case <-rep.done:
	case <-r.Context().Done():
		return enqueued // client gone; the job still completes and stays cached
	}

	s.mu.Lock()
	snap := *rep
	s.mu.Unlock()
	if hit {
		s.dedupHits.Add(1)
		snap.Cached = true
	}
	if snap.Status == StatusError {
		writeJSON(w, http.StatusUnprocessableEntity, snap)
		return enqueued
	}
	if save {
		// A cached submission with save=1 promotes the already-stored
		// profile without re-running anything.
		if err := s.cfg.Store.SetBaseline(snap.Experiment, snap.ProfileHash); err != nil {
			httpError(w, http.StatusInternalServerError, "promoting baseline: %v", err)
			return enqueued
		}
		snap.Saved = true
		s.mu.Lock()
		rep.Saved = true
		s.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, snap)
	return enqueued
}

// retire records a completed report for eviction and drops the oldest
// completed reports once the cache exceeds cfg.MaxReports, so a
// long-running server's memory does not grow with every distinct
// submission it has ever seen.  An evicted report simply re-runs on
// resubmission; dedup waiters already holding the *Report are
// unaffected by the map eviction.
func (s *Server) retire(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.doneOrder = append(s.doneOrder, id)
	for len(s.doneOrder) > s.cfg.MaxReports {
		delete(s.reports, s.doneOrder[0])
		s.doneOrder = s.doneOrder[1:]
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
