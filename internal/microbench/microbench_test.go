package microbench

import (
	"strings"
	"testing"

	"repro/internal/vtime"
)

func TestPingPongLatencyBandwidthShape(t *testing.T) {
	rs, err := PingPong([]int{8, 1024, 65536}, 5, vtime.Virtual)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("got %d rows", len(rs))
	}
	// RTT must grow with message size; bandwidth must improve.
	for i := 1; i < len(rs); i++ {
		if rs[i].RTT <= rs[i-1].RTT {
			t.Errorf("RTT not increasing: %v then %v", rs[i-1].RTT, rs[i].RTT)
		}
		if rs[i].Bandwidth <= rs[i-1].Bandwidth {
			t.Errorf("bandwidth not improving: %v then %v", rs[i-1].Bandwidth, rs[i].Bandwidth)
		}
	}
	// Small-message RTT is latency-bound: ≈ 2×(latency+overheads); with
	// the default 5µs latency it must sit in the 5–100µs band.
	if rs[0].RTT < 5e-6 || rs[0].RTT > 1e-4 {
		t.Errorf("8-byte RTT = %v, outside plausible band", rs[0].RTT)
	}
	out := FormatPingPong(rs)
	if !strings.Contains(out, "65536") {
		t.Errorf("table missing row:\n%s", out)
	}
}

func TestCollectivesScaleWithProcs(t *testing.T) {
	rs, err := Collectives([]int{2, 8}, 512, 4, vtime.Virtual)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]float64{}
	for _, r := range rs {
		byKey[r.Op+string(rune('0'+r.Procs))] = r.Time
	}
	// Logarithmic tree model: 8 ranks must cost more than 2.
	for _, op := range []string{"barrier", "bcast", "allreduce", "alltoall"} {
		if byKey[op+"8"] <= byKey[op+"2"] {
			t.Errorf("%s: time(8)=%v <= time(2)=%v", op, byKey[op+"8"], byKey[op+"2"])
		}
	}
	if out := FormatCollectives(rs); !strings.Contains(out, "alltoall") {
		t.Errorf("table missing op:\n%s", out)
	}
}

func TestOMPOverheadsPositive(t *testing.T) {
	rs, err := OMPOverheads(4, 5, vtime.Virtual)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("got %d rows", len(rs))
	}
	for _, r := range rs {
		if r.Overhead <= 0 {
			t.Errorf("%s overhead = %v, want > 0", r.Construct, r.Overhead)
		}
		// All construct overheads are microsecond-scale in the default
		// cost model.
		if r.Overhead > 1e-3 {
			t.Errorf("%s overhead = %v, implausibly large", r.Construct, r.Overhead)
		}
	}
	if out := FormatOMP(rs); !strings.Contains(out, "critical") {
		t.Errorf("table missing construct:\n%s", out)
	}
}

func TestIntrusivenessMeasurable(t *testing.T) {
	res, err := Intrusiveness(4, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Events == 0 {
		t.Error("instrumented run produced no events")
	}
	if res.PlainWall <= 0 || res.TracedWall <= 0 {
		t.Error("wall times not measured")
	}
	// Tracing must not blow the run up by an order of magnitude.  The
	// measurement is real wall-clock and a descheduled instant on a loaded
	// 1-CPU CI box can cross the line, so re-measure before failing.
	for attempt := 0; res.Overhead > 10 && attempt < 2; attempt++ {
		if res, err = Intrusiveness(4, 50); err != nil {
			t.Fatal(err)
		}
	}
	if res.Overhead > 10 {
		t.Errorf("tracing overhead %.1fx looks pathological", res.Overhead+1)
	}
}
