// Package microbench implements the benchmark-suite layer of the paper's
// Chapter 2: SKaMPI-style MPI microbenchmarks (point-to-point and
// collective timing over message sizes and process counts) and
// EPCC-style OpenMP construct-overhead measurements, plus the
// instrumentation-overhead (intrusiveness) comparison the paper describes
// — run the benchmarks with and without tool instrumentation and compare.
//
// In Virtual clock mode the reported operation times are the cost model's
// predictions (useful for checking the model's shape); intrusiveness is
// always measured on the host wall clock, because it quantifies the cost
// of the tracing machinery itself.
package microbench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/mpi"
	"repro/internal/omp"
	"repro/internal/vtime"
	"repro/internal/xctx"
)

// PingPongResult is one row of the point-to-point benchmark.
type PingPongResult struct {
	Bytes int
	// RTT is the average round-trip time in (virtual or real) seconds.
	RTT float64
	// Bandwidth is the effective one-way bandwidth in bytes/second.
	Bandwidth float64
}

// PingPong measures round-trip times between ranks 0 and 1 for each
// message size (SKaMPI's classic pattern).
func PingPong(sizes []int, reps int, mode vtime.Mode) ([]PingPongResult, error) {
	if reps <= 0 {
		reps = 10
	}
	var out []PingPongResult
	for _, sz := range sizes {
		rtt := make([]float64, 2)
		_, err := mpi.Run(mpi.Options{Procs: 2, Mode: mode, Untraced: true}, func(c *mpi.Comm) {
			buf := mpi.AllocBuf(mpi.TypeByte, sz)
			c.Barrier()
			start := c.WTime()
			for i := 0; i < reps; i++ {
				if c.Rank() == 0 {
					c.Send(buf, 1, 0)
					c.Recv(buf, 1, 1)
				} else {
					c.Recv(buf, 0, 0)
					c.Send(buf, 0, 1)
				}
			}
			rtt[c.Rank()] = (c.WTime() - start) / float64(reps)
		})
		if err != nil {
			return nil, err
		}
		res := PingPongResult{Bytes: sz, RTT: rtt[0]}
		if rtt[0] > 0 {
			res.Bandwidth = 2 * float64(sz) / rtt[0]
		}
		out = append(out, res)
	}
	return out, nil
}

// CollResult is one row of the collective benchmark.
type CollResult struct {
	Op    string
	Procs int
	Bytes int
	// Time is the average per-operation completion time.
	Time float64
}

// Collectives measures barrier, bcast, allreduce and alltoall times for
// each process count.
func Collectives(procs []int, bytes, reps int, mode vtime.Mode) ([]CollResult, error) {
	if reps <= 0 {
		reps = 10
	}
	ops := []string{"barrier", "bcast", "allreduce", "alltoall"}
	var out []CollResult
	for _, p := range procs {
		times := make(map[string]float64)
		_, err := mpi.Run(mpi.Options{Procs: p, Mode: mode, Untraced: true}, func(c *mpi.Comm) {
			n := bytes / mpi.TypeDouble.Size()
			if n <= 0 {
				n = 1
			}
			sb := mpi.AllocBuf(mpi.TypeDouble, n)
			rb := mpi.AllocBuf(mpi.TypeDouble, n)
			sbig := mpi.AllocBuf(mpi.TypeDouble, n*c.Size())
			rbig := mpi.AllocBuf(mpi.TypeDouble, n*c.Size())
			for _, op := range ops {
				c.Barrier()
				start := c.WTime()
				for i := 0; i < reps; i++ {
					switch op {
					case "barrier":
						c.Barrier()
					case "bcast":
						c.Bcast(sb, 0)
					case "allreduce":
						c.Allreduce(sb, rb, mpi.OpSum)
					case "alltoall":
						c.Alltoall(sbig, rbig)
					}
				}
				el := (c.WTime() - start) / float64(reps)
				if c.Rank() == 0 {
					times[op] = el
				}
			}
		})
		if err != nil {
			return nil, err
		}
		for _, op := range ops {
			out = append(out, CollResult{Op: op, Procs: p, Bytes: bytes, Time: times[op]})
		}
	}
	return out, nil
}

// OMPOverhead is one row of the EPCC-style construct-overhead benchmark.
type OMPOverhead struct {
	Construct string
	Threads   int
	// Overhead is the per-construct cost in seconds.
	Overhead float64
}

// OMPOverheads measures the cost of parallel-region fork/join, barrier,
// worksharing loop dispatch, and critical-section entry, following the
// EPCC methodology of timing a reference loop with and without the
// construct.
func OMPOverheads(threads, reps int, mode vtime.Mode) ([]OMPOverhead, error) {
	if reps <= 0 {
		reps = 20
	}
	var out []OMPOverhead
	_, err := omp.Run(omp.RunOptions{Threads: threads, Mode: mode, Untraced: true},
		func(ctx *xctx.Ctx, opt omp.Options) {
			// parallel region fork+join.
			start := ctx.Now()
			for i := 0; i < reps; i++ {
				omp.Parallel(ctx, opt, func(tc *omp.TC) {})
			}
			out = append(out, OMPOverhead{"parallel", threads, (ctx.Now() - start) / float64(reps)})

			// barrier.
			var barrier float64
			omp.Parallel(ctx, opt, func(tc *omp.TC) {
				s := tc.Now()
				for i := 0; i < reps; i++ {
					tc.Barrier()
				}
				if tc.ThreadNum() == 0 {
					barrier = (tc.Now() - s) / float64(reps)
				}
			})
			out = append(out, OMPOverhead{"barrier", threads, barrier})

			// worksharing loop (empty dynamic loop).
			var loop float64
			omp.Parallel(ctx, opt, func(tc *omp.TC) {
				s := tc.Now()
				for i := 0; i < reps; i++ {
					tc.For(threads, omp.ForOpt{Sched: omp.Dynamic}, func(int) {})
				}
				if tc.ThreadNum() == 0 {
					loop = (tc.Now() - s) / float64(reps)
				}
			})
			out = append(out, OMPOverhead{"for", threads, loop})

			// critical entry.
			var crit float64
			omp.Parallel(ctx, opt, func(tc *omp.TC) {
				s := tc.Now()
				for i := 0; i < reps; i++ {
					tc.Critical("bench", func() {})
				}
				if tc.ThreadNum() == 0 {
					crit = (tc.Now() - s) / float64(reps)
				}
			})
			out = append(out, OMPOverhead{"critical", threads, crit})
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// IntrusivenessResult compares a workload with and without tracing.
type IntrusivenessResult struct {
	// PlainWall and TracedWall are host wall-clock times of the two runs.
	PlainWall  time.Duration
	TracedWall time.Duration
	// Overhead is TracedWall/PlainWall - 1.
	Overhead float64
	// Events is the number of trace events the instrumented run produced.
	Events int
}

// Intrusiveness runs a fixed communication-heavy workload twice — without
// and with event tracing — and reports the tool overhead, the Chapter-2
// procedure for judging how much the instrumentation perturbs a program.
func Intrusiveness(procs, reps int) (IntrusivenessResult, error) {
	workload := func(c *mpi.Comm) {
		sb := mpi.AllocBuf(mpi.TypeDouble, 64)
		rb := mpi.AllocBuf(mpi.TypeDouble, 64)
		for i := 0; i < reps; i++ {
			mpi.PatternShift(c, sb, rb, mpi.DirUp, mpi.PatternOpts{})
			c.Allreduce(sb, rb, mpi.OpSum)
			c.Barrier()
		}
	}
	var res IntrusivenessResult

	start := time.Now()
	if _, err := mpi.Run(mpi.Options{Procs: procs, Untraced: true}, workload); err != nil {
		return res, err
	}
	res.PlainWall = time.Since(start)

	start = time.Now()
	tr, err := mpi.Run(mpi.Options{Procs: procs}, workload)
	if err != nil {
		return res, err
	}
	res.TracedWall = time.Since(start)
	res.Events = len(tr.Events)
	if res.PlainWall > 0 {
		res.Overhead = float64(res.TracedWall)/float64(res.PlainWall) - 1
	}
	return res, nil
}

// FormatPingPong renders the ping-pong table.
func FormatPingPong(rs []PingPongResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %14s %14s\n", "bytes", "rtt(s)", "bw(B/s)")
	for _, r := range rs {
		fmt.Fprintf(&b, "%10d %14.9f %14.0f\n", r.Bytes, r.RTT, r.Bandwidth)
	}
	return b.String()
}

// FormatCollectives renders the collective table.
func FormatCollectives(rs []CollResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %6s %10s %14s\n", "op", "procs", "bytes", "time(s)")
	for _, r := range rs {
		fmt.Fprintf(&b, "%-10s %6d %10d %14.9f\n", r.Op, r.Procs, r.Bytes, r.Time)
	}
	return b.String()
}

// FormatOMP renders the OpenMP overhead table.
func FormatOMP(rs []OMPOverhead) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %8s %14s\n", "construct", "threads", "overhead(s)")
	for _, r := range rs {
		fmt.Fprintf(&b, "%-10s %8d %14.9f\n", r.Construct, r.Threads, r.Overhead)
	}
	return b.String()
}
