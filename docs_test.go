// Documentation conformance checks (`make docs`): the repository's
// markdown must not rot.  Two properties are enforced: every relative
// link in the curated docs resolves to a file in the repository, and the
// README's command-line reference stays in sync with the flags the cmd/
// binaries actually define.
package repro_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/asl"
)

// docFiles are the curated documents the link check walks.  Scratch files
// (ISSUE/PAPER/SNIPPETS notes) are exempt: they quote external material.
var docFiles = []string{
	"README.md",
	"DESIGN.md",
	"EXPERIMENTS.md",
	"ROADMAP.md",
	"doc/API.md",
	"doc/ARCHITECTURE.md",
	"doc/ASL.md",
	"doc/FORMATS.md",
	"doc/PERFORMANCE.md",
}

// mdLink matches [text](target); targets with spaces or nested parens are
// not used in this repository.
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// TestDocsLinks resolves every relative markdown link against the tree.
func TestDocsLinks(t *testing.T) {
	for _, file := range docFiles {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Errorf("%s: %v (listed in docFiles)", file, err)
			continue
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") ||
				strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s)", file, m[1], resolved)
			}
		}
	}
}

// flagDefs match flag definitions on the `flag` package or a FlagSet
// conventionally named fs: flag.String("name", …), fs.Float64Var(&v,
// "name", …), flag.Var(v, "name", …).
var flagDefs = []*regexp.Regexp{
	regexp.MustCompile(`\b(?:flag|fs)\.(?:Bool|Int|Int64|Uint|Uint64|Float64|String|Duration)\(\s*"([^"]+)"`),
	regexp.MustCompile(`\b(?:flag|fs)\.(?:Bool|Int|Int64|Uint|Uint64|Float64|String|Duration)Var\(\s*&[^,]+,\s*"([^"]+)"`),
	regexp.MustCompile(`\b(?:flag|fs)\.Var\(\s*[^,]+,\s*"([^"]+)"`),
}

// cmdFlags scans the non-test sources of one cmd/ binary for the flag
// names it defines.
func cmdFlags(t *testing.T, dir string) []string {
	t.Helper()
	srcs, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	var names []string
	for _, src := range srcs {
		if strings.HasSuffix(src, "_test.go") {
			continue
		}
		data, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, re := range flagDefs {
			for _, m := range re.FindAllStringSubmatch(string(data), -1) {
				if !seen[m[1]] {
					seen[m[1]] = true
					names = append(names, m[1])
				}
			}
		}
	}
	return names
}

// TestDocsCLIReference keeps the README's command-line table honest:
// every cmd/ binary has a table row, and every flag a binary defines is
// mentioned in that row.
func TestDocsCLIReference(t *testing.T) {
	data, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	readme := string(data)

	dirs, err := filepath.Glob("cmd/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no cmd/ binaries found")
	}
	for _, dir := range dirs {
		tool := filepath.Base(dir)
		row := ""
		for _, line := range strings.Split(readme, "\n") {
			if strings.HasPrefix(line, fmt.Sprintf("| `%s` |", tool)) {
				row = line
				break
			}
		}
		if row == "" {
			t.Errorf("README.md: no command-line table row for %s", tool)
			continue
		}
		for _, name := range cmdFlags(t, dir) {
			if !strings.Contains(row, "-"+name) {
				t.Errorf("README.md: %s row does not mention its -%s flag", tool, name)
			}
		}
	}
}

// TestDocsASLReference keeps doc/ASL.md in sync with the language the
// asl package actually implements: every injection primitive (with its
// detection claim), every severity helper, and every metric function
// must appear in the reference.
func TestDocsASLReference(t *testing.T) {
	data, err := os.ReadFile("doc/ASL.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)
	for _, p := range asl.Primitives() {
		if !strings.Contains(doc, "`"+p.Name+"`") {
			t.Errorf("doc/ASL.md: injection primitive %s undocumented", p.Name)
		}
		if p.Detects != "" && !strings.Contains(doc, p.Detects) {
			t.Errorf("doc/ASL.md: %s's detection %q undocumented", p.Name, p.Detects)
		}
	}
	mentions := func(name string) bool {
		return strings.Contains(doc, "`"+name+"`") || strings.Contains(doc, "`"+name+"(")
	}
	for _, name := range asl.ParamFuncs {
		if !mentions(name) {
			t.Errorf("doc/ASL.md: severity helper %s undocumented", name)
		}
	}
	for _, name := range asl.MetricFuncs {
		if !mentions(name) {
			t.Errorf("doc/ASL.md: metric function %s undocumented", name)
		}
	}
}
